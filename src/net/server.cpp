#include "net/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "common/env.hpp"
#include "common/fault.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "net/protocol.hpp"

namespace slicer::net {

namespace {

struct ServerMetrics {
  metrics::Counter& accepted = metrics::counter("net.server.connections_accepted");
  metrics::Counter& rejected = metrics::counter("net.server.connections_rejected");
  metrics::Counter& frames_received = metrics::counter("net.server.frames_received");
  metrics::Counter& frames_sent = metrics::counter("net.server.frames_sent");
  metrics::Counter& requests_dispatched =
      metrics::counter("net.server.requests_dispatched");
  metrics::Counter& errors_sent = metrics::counter("net.server.errors_sent");
  metrics::Counter& decode_errors = metrics::counter("net.server.decode_errors");
  metrics::Counter& tenant_throttled =
      metrics::counter("net.server.tenant.throttled");
  metrics::Counter& tenant_misbehavior =
      metrics::counter("net.server.tenant.misbehavior");
  metrics::Counter& tenant_bans = metrics::counter("net.server.tenant.bans");
  metrics::Counter& tenant_banned_rejects =
      metrics::counter("net.server.tenant.banned_rejects");
  metrics::Gauge& active_connections =
      metrics::gauge("net.server.active_connections");
  metrics::Gauge& dispatch_inflight = metrics::gauge("net.server.dispatch_inflight");
  metrics::Histogram& decode_ns = metrics::histogram("net.server.decode_ns");
  metrics::Histogram& handle_ns = metrics::histogram("net.server.handle_ns");
  metrics::Histogram& request_ns = metrics::histogram("net.server.request_ns");
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

Bytes error_frame(std::string_view code, std::string_view message,
                  std::size_t max_frame_bytes) {
  ErrorReply reply;
  reply.code = std::string(code);
  reply.message = std::string(message);
  server_metrics().errors_sent.add();
  return encode_frame(static_cast<std::uint8_t>(Op::kError), reply.serialize(),
                      max_frame_bytes);
}

/// Misbehavior tariffs (see the server.hpp header comment).
constexpr std::size_t kMalformedPoints = 20;
constexpr std::size_t kUnknownOpcodePoints = 10;
constexpr std::size_t kOversizedPoints = 40;

}  // namespace

/// One registered tenant: its database plus the reader/writer lock that
/// lets concurrent searches coexist with exclusive APPLY batches, plus the
/// abuse-control state shared by every connection the tenant holds.
struct SlicerServer::Tenant {
  std::unique_ptr<core::CloudServer> cloud;
  std::shared_mutex mu;

  /// Token bucket + misbehavior score. Guarded by admission_mu: reader
  /// threads consult it per request; pool threads add misbehavior when a
  /// payload fails to decode.
  std::mutex admission_mu;
  double tokens = 0;
  std::chrono::steady_clock::time_point last_refill{};
  std::size_t misbehavior = 0;
  std::chrono::steady_clock::time_point banned_until{};
};

/// One live connection. The reader thread owns decode + dispatch; replies
/// are staged under `mu` keyed by their request sequence number, and the
/// writer thread drains them strictly in sequence order.
struct SlicerServer::Connection {
  std::uint64_t id = 0;
  Socket sock;
  Tenant* tenant = nullptr;  // bound by the HELLO frame

  std::mutex mu;
  std::condition_variable cv;
  /// seq → staged reply frame; the writer sends seq `next_to_send` only.
  std::map<std::uint64_t, Bytes> staged;
  std::uint64_t next_seq = 0;
  std::uint64_t next_to_send = 0;
  /// Requests dispatched to the pool whose reply is not yet staged.
  std::size_t pending = 0;
  /// Reader exited: no more requests will be staged.
  bool reads_done = false;
  /// Hard abort (send failure / server stop): writer drops staged replies.
  bool aborted = false;

  std::thread reader;
  std::thread writer;
  std::atomic<bool> finished{false};  // both threads exited; reapable

  void stage_reply(std::uint64_t seq, Bytes frame) {
    {
      std::lock_guard lock(mu);
      staged.emplace(seq, std::move(frame));
      if (pending > 0) --pending;
    }
    cv.notify_all();
  }
};

struct SlicerServer::Impl {
  ServerConfig config;
  FrameTamper tamper;

  std::map<std::string, std::unique_ptr<Tenant>> tenants;

  std::unique_ptr<ListenSocket> listener;
  std::thread acceptor;
  std::atomic<bool> stopping{false};
  bool started = false;

  mutable std::mutex conns_mu;
  std::map<std::uint64_t, std::shared_ptr<Connection>> conns;
  std::uint64_t next_conn_id = 0;

  /// Admission slots for pool dispatch (SLICER_NET_THREADS).
  std::mutex slots_mu;
  std::condition_variable slots_cv;
  std::size_t slots_free = 0;

  /// Dispatched handlers still running (stop() drains to zero before
  /// tearing down connections/tenants the handlers reference).
  std::mutex inflight_mu;
  std::condition_variable inflight_cv;
  std::size_t inflight = 0;

  // --- admission ---------------------------------------------------------

  bool acquire_slot() {
    std::unique_lock lock(slots_mu);
    slots_cv.wait(lock,
                  [&] { return slots_free > 0 || stopping.load(); });
    if (stopping.load()) return false;
    --slots_free;
    return true;
  }

  void release_slot() {
    {
      std::lock_guard lock(slots_mu);
      ++slots_free;
    }
    slots_cv.notify_one();
  }

  // --- tenant abuse control ----------------------------------------------

  bool tenant_is_banned(Tenant& tenant) const {
    std::lock_guard lock(tenant.admission_mu);
    return std::chrono::steady_clock::now() < tenant.banned_until;
  }

  /// Adds misbehavior points to the tenant; returns true when this call
  /// tripped the ban threshold (the caller should close the connection).
  bool record_misbehavior(Tenant& tenant, std::size_t points) {
    server_metrics().tenant_misbehavior.add(points);
    std::lock_guard lock(tenant.admission_mu);
    tenant.misbehavior += points;
    if (tenant.misbehavior < config.ban_threshold) return false;
    tenant.misbehavior = 0;
    tenant.banned_until =
        std::chrono::steady_clock::now() + config.ban_duration;
    server_metrics().tenant_bans.add();
    return true;
  }

  enum class Admission { kAdmit, kThrottle, kBanned };

  /// Token-bucket admission for one request. The `net.tenant.flood` fault
  /// site fires here: it drains the tenant's bucket and throttles the hit
  /// request (even under unlimited qps), which is how the soak starves one
  /// tenant on demand.
  Admission admit(Tenant& tenant) {
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard lock(tenant.admission_mu);
    if (now < tenant.banned_until) return Admission::kBanned;
    const bool flood = fault_point("net.tenant.flood");
    if (config.tenant_qps == 0)  // unlimited admission
      return flood ? Admission::kThrottle : Admission::kAdmit;
    const double elapsed =
        std::chrono::duration<double>(now - tenant.last_refill).count();
    tenant.last_refill = now;
    tenant.tokens = std::min(
        static_cast<double>(config.tenant_burst),
        tenant.tokens + elapsed * static_cast<double>(config.tenant_qps));
    if (flood) tenant.tokens = 0;
    if (flood || tenant.tokens < 1.0) return Admission::kThrottle;
    tenant.tokens -= 1.0;
    return Admission::kAdmit;
  }

  // --- request handling --------------------------------------------------

  /// Decodes + executes one non-HELLO request against the connection's
  /// tenant. Returns the reply frame (success or kError payload).
  Bytes handle_request(Tenant& tenant, const Frame& frame) {
    trace::Span span("net.server.handle");
    metrics::ScopedTimer timer(server_metrics().handle_ns);
    const auto op = static_cast<Op>(frame.opcode);
    const std::uint8_t reply = static_cast<std::uint8_t>(reply_op(op));
    const std::size_t max = config.max_frame_bytes;
    try {
      switch (op) {
        case Op::kPing:
          return encode_frame(reply, BytesView{}, max);
        case Op::kApply: {
          const core::UpdateOutput update =
              core::UpdateOutput::deserialize(frame.payload);
          std::unique_lock lock(tenant.mu);
          tenant.cloud->apply(update);
          ApplyReply out;
          out.prime_count = tenant.cloud->prime_count();
          return encode_frame(reply, out.serialize(), max);
        }
        case Op::kSearch: {
          const SearchRequest req = SearchRequest::deserialize(frame.payload);
          std::shared_lock lock(tenant.mu);
          SearchReply out;
          out.replies = tenant.cloud->search(req.tokens);
          return encode_frame(reply, out.serialize(), max);
        }
        case Op::kSearchAggregated: {
          const SearchRequest req = SearchRequest::deserialize(frame.payload);
          std::shared_lock lock(tenant.mu);
          const core::QueryReply out =
              tenant.cloud->search_aggregated(req.tokens);
          return encode_frame(reply, out.serialize(), max);
        }
        case Op::kFetch: {
          const FetchRequest req = FetchRequest::deserialize(frame.payload);
          std::shared_lock lock(tenant.mu);
          FetchReply out;
          out.results = tenant.cloud->fetch_results(req.token);
          return encode_frame(reply, out.serialize(), max);
        }
        case Op::kProve: {
          ProveRequest req = ProveRequest::deserialize(frame.payload);
          std::shared_lock lock(tenant.mu);
          const core::TokenReply out =
              tenant.cloud->prove(req.token, std::move(req.results));
          return encode_frame(reply, out.serialize(), max);
        }
        case Op::kQueryPlan: {
          const QueryPlanRequest req =
              QueryPlanRequest::deserialize(frame.payload);
          std::shared_lock lock(tenant.mu);
          QueryPlanReply out;
          out.clauses = tenant.cloud->search_plan(req.clauses);
          return encode_frame(reply, out.serialize(), max);
        }
        default:
          return error_frame("protocol",
                             "unknown opcode " + std::to_string(frame.opcode),
                             max);
      }
    } catch (const DecodeError& e) {
      server_metrics().decode_errors.add();
      // Undecodable payload inside a well-framed request: score it on the
      // tenant. The ban (if tripped) takes effect on the next dispatch.
      record_misbehavior(tenant, kMalformedPoints);
      return error_frame("decode", e.what(), max);
    } catch (const ProtocolError& e) {
      return error_frame("protocol", e.what(), max);
    } catch (const Error& e) {
      return error_frame("internal", e.what(), max);
    }
  }

  /// HELLO handling on the reader thread (cheap: a map lookup). Returns
  /// false when the connection must close (bad magic / unknown tenant).
  bool handle_hello(Connection& conn, const Frame& frame) {
    const std::size_t max = config.max_frame_bytes;
    const std::uint64_t seq = conn.next_seq++;
    try {
      const HelloRequest req = HelloRequest::deserialize(frame.payload);
      const auto it = tenants.find(req.tenant);
      if (it == tenants.end()) {
        conn.stage_reply(seq, error_frame("hello",
                                          "unknown tenant: " + req.tenant,
                                          max));
        return false;
      }
      if (tenant_is_banned(*it->second)) {
        // A banned tenant cannot launder its score by reconnecting.
        server_metrics().tenant_banned_rejects.add();
        conn.stage_reply(seq, error_frame("banned",
                                          "tenant is banned: " + req.tenant,
                                          max));
        return false;
      }
      conn.tenant = it->second.get();
      HelloReply out;
      out.tenant = req.tenant;
      {
        std::shared_lock lock(conn.tenant->mu);
        out.shard_count =
            static_cast<std::uint32_t>(conn.tenant->cloud->shard_count());
        out.prime_count = conn.tenant->cloud->prime_count();
      }
      conn.stage_reply(seq, encode_frame(static_cast<std::uint8_t>(Op::kHelloOk),
                                         out.serialize(), max));
      return true;
    } catch (const DecodeError& e) {
      server_metrics().decode_errors.add();
      conn.stage_reply(seq, error_frame("hello", e.what(), max));
      return false;
    }
  }

  /// Dispatches one decoded frame from the reader thread. Returns false
  /// when the connection should close.
  bool dispatch(const std::shared_ptr<Connection>& conn, Frame frame) {
    server_metrics().frames_received.add();
    const auto op = static_cast<Op>(frame.opcode);
    const std::size_t max = config.max_frame_bytes;

    if (conn->tenant == nullptr) {
      if (op != Op::kHello) {
        conn->stage_reply(conn->next_seq++,
                          error_frame("hello", "expected HELLO first", max));
        return false;
      }
      return handle_hello(*conn, frame);
    }
    if (op == Op::kHello) {
      conn->stage_reply(conn->next_seq++,
                        error_frame("protocol", "duplicate HELLO", max));
      return false;
    }

    // Abuse control, all on the reader thread (cheap: one mutex hop), in
    // order: ban gate, misbehavior scoring (garbage never spends a token),
    // then the token bucket.
    Tenant& tenant = *conn->tenant;
    if (tenant_is_banned(tenant)) {
      server_metrics().tenant_banned_rejects.add();
      conn->stage_reply(conn->next_seq++,
                        error_frame("banned", "tenant is banned", max));
      return false;
    }
    const bool known_op = op == Op::kPing || op == Op::kApply ||
                          op == Op::kSearch || op == Op::kSearchAggregated ||
                          op == Op::kFetch || op == Op::kProve ||
                          op == Op::kQueryPlan;
    if (!known_op) {
      const bool banned = record_misbehavior(tenant, kUnknownOpcodePoints);
      conn->stage_reply(conn->next_seq++,
                        error_frame("protocol",
                                    "unknown opcode " +
                                        std::to_string(frame.opcode),
                                    max));
      return !banned;  // a tripped ban disconnects immediately
    }
    const std::size_t soft_max = config.max_request_bytes == 0
                                     ? config.max_frame_bytes
                                     : config.max_request_bytes;
    if (frame.payload.size() > soft_max) {
      const bool banned = record_misbehavior(tenant, kOversizedPoints);
      conn->stage_reply(
          conn->next_seq++,
          error_frame("protocol",
                      "oversized payload: " +
                          std::to_string(frame.payload.size()) + " > " +
                          std::to_string(soft_max) + " bytes",
                      max));
      return !banned;
    }
    switch (admit(tenant)) {
      case Admission::kBanned:
        server_metrics().tenant_banned_rejects.add();
        conn->stage_reply(conn->next_seq++,
                          error_frame("banned", "tenant is banned", max));
        return false;
      case Admission::kThrottle:
        // The connection stays open: throttling is a retryable condition
        // the client answers with backoff, not a protocol violation.
        server_metrics().tenant_throttled.add();
        conn->stage_reply(
            conn->next_seq++,
            error_frame("throttled", "tenant rate limit exceeded", max));
        return true;
      case Admission::kAdmit:
        break;
    }

    if (!acquire_slot()) return false;  // server stopping
    const std::uint64_t seq = conn->next_seq++;
    {
      std::lock_guard lock(conn->mu);
      ++conn->pending;
    }
    {
      std::lock_guard lock(inflight_mu);
      ++inflight;
    }
    server_metrics().requests_dispatched.add();
    server_metrics().dispatch_inflight.add();

    ThreadPool::instance().submit(
        [this, conn, tenant = &tenant, seq, frame = std::move(frame)]() mutable {
          const auto start = std::chrono::steady_clock::now();
          Bytes reply = handle_request(*tenant, frame);
          conn->stage_reply(seq, std::move(reply));
          release_slot();
          server_metrics().dispatch_inflight.sub();
          if (metrics::enabled()) {
            const auto ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            server_metrics().request_ns.record(
                ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
          }
          {
            std::lock_guard lock(inflight_mu);
            --inflight;
          }
          inflight_cv.notify_all();
        });
    return true;
  }

  // --- connection threads -------------------------------------------------

  void reader_loop(std::shared_ptr<Connection> conn) {
    conn->sock.set_recv_timeout(config.idle_timeout);
    FrameDecoder decoder(config.max_frame_bytes);
    bool keep_going = true;
    try {
      while (keep_going && !stopping.load()) {
        const Bytes chunk = conn->sock.recv_some();
        if (chunk.empty()) break;  // orderly peer shutdown
        metrics::ScopedTimer timer(server_metrics().decode_ns);
        decoder.feed(chunk);
        while (keep_going) {
          std::optional<Frame> frame = decoder.next();
          if (!frame.has_value()) break;
          keep_going = dispatch(conn, std::move(*frame));
        }
      }
    } catch (const DecodeError& e) {
      // Malformed framing: the stream cannot be resynchronized. Report and
      // close. Post-HELLO this scores on the tenant, so a reconnect-and-
      // send-garbage loop converges on a ban.
      server_metrics().decode_errors.add();
      if (conn->tenant != nullptr)
        record_misbehavior(*conn->tenant, kMalformedPoints);
      conn->stage_reply(conn->next_seq++,
                        error_frame("decode", e.what(), config.max_frame_bytes));
    } catch (const NetError&) {
      // Idle timeout or transport failure: nothing sensible to send.
    }
    {
      std::lock_guard lock(conn->mu);
      conn->reads_done = true;
    }
    conn->cv.notify_all();
  }

  void writer_loop(std::shared_ptr<Connection> conn) {
    conn->sock.set_send_timeout(config.send_timeout);
    for (;;) {
      Bytes frame;
      {
        std::unique_lock lock(conn->mu);
        conn->cv.wait(lock, [&] {
          return conn->aborted || conn->staged.count(conn->next_to_send) != 0 ||
                 (conn->reads_done && conn->pending == 0 &&
                  conn->staged.empty());
        });
        if (conn->aborted) break;
        const auto it = conn->staged.find(conn->next_to_send);
        if (it == conn->staged.end()) break;  // drained and reader done
        frame = std::move(it->second);
        conn->staged.erase(it);
        ++conn->next_to_send;
      }
      try {
        if (tamper) {
          for (const Bytes& out : tamper(frame)) conn->sock.send_all(out);
        } else {
          conn->sock.send_all(frame);
        }
        server_metrics().frames_sent.add();
      } catch (const NetError&) {
        std::lock_guard lock(conn->mu);
        conn->aborted = true;
        break;
      }
    }
    // Unblock the reader if it is still parked in recv (send failed first).
    conn->sock.shutdown_both();
    conn->finished.store(true);
  }

  // --- acceptor -----------------------------------------------------------

  void reap_finished() {
    std::lock_guard lock(conns_mu);
    for (auto it = conns.begin(); it != conns.end();) {
      Connection& conn = *it->second;
      bool done = conn.finished.load();
      if (done) {
        std::lock_guard cl(conn.mu);
        done = conn.reads_done && conn.pending == 0;
      }
      if (done) {
        if (conn.reader.joinable()) conn.reader.join();
        if (conn.writer.joinable()) conn.writer.join();
        it = conns.erase(it);
        server_metrics().active_connections.sub();
      } else {
        ++it;
      }
    }
  }

  void accept_loop() {
    while (!stopping.load()) {
      Socket sock = listener->accept_with_timeout(std::chrono::milliseconds(50));
      reap_finished();
      if (!sock.valid()) continue;
      std::size_t live = 0;
      {
        std::lock_guard lock(conns_mu);
        live = conns.size();
      }
      if (live >= config.max_connections) {
        server_metrics().rejected.add();
        try {
          sock.set_send_timeout(config.send_timeout);
          sock.send_all(error_frame("busy", "connection limit reached",
                                    config.max_frame_bytes));
        } catch (const NetError&) {
        }
        continue;  // Socket dtor closes
      }
      server_metrics().accepted.add();
      server_metrics().active_connections.add();
      auto conn = std::make_shared<Connection>();
      conn->sock = std::move(sock);
      {
        std::lock_guard lock(conns_mu);
        conn->id = next_conn_id++;
        conns.emplace(conn->id, conn);
      }
      conn->reader = std::thread([this, conn] { reader_loop(conn); });
      conn->writer = std::thread([this, conn] { writer_loop(conn); });
    }
  }
};

SlicerServer::SlicerServer(ServerConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  if (impl_->config.port == 0) {
    impl_->config.port = static_cast<std::uint16_t>(
        env::size_knob("SLICER_PORT", 0, 0, 65535));
  }
  if (impl_->config.dispatch_concurrency == 0) {
    impl_->config.dispatch_concurrency = env::size_knob(
        "SLICER_NET_THREADS", ThreadPool::instance().thread_count(), 1, 4096);
  }
  if (impl_->config.tenant_qps == 0) {
    impl_->config.tenant_qps =
        env::size_knob("SLICER_TENANT_QPS", 0, 0, 1'000'000);
  }
  impl_->slots_free = impl_->config.dispatch_concurrency;
}

SlicerServer::~SlicerServer() { stop(); }

void SlicerServer::add_tenant(const std::string& name,
                              std::unique_ptr<core::CloudServer> cloud) {
  if (impl_->started) throw ProtocolError("add_tenant after start");
  auto tenant = std::make_unique<Tenant>();
  tenant->cloud = std::move(cloud);
  tenant->tokens = static_cast<double>(impl_->config.tenant_burst);
  tenant->last_refill = std::chrono::steady_clock::now();
  if (!impl_->tenants.emplace(name, std::move(tenant)).second)
    throw ProtocolError("duplicate tenant: " + name);
}

const core::CloudServer& SlicerServer::tenant(const std::string& name) const {
  const auto it = impl_->tenants.find(name);
  if (it == impl_->tenants.end())
    throw ProtocolError("unknown tenant: " + name);
  return *it->second->cloud;
}

void SlicerServer::start() {
  if (impl_->started) throw ProtocolError("server already started");
  impl_->listener = std::make_unique<ListenSocket>(impl_->config.port);
  impl_->started = true;
  impl_->stopping.store(false);
  impl_->acceptor = std::thread([this] { impl_->accept_loop(); });
}

void SlicerServer::stop() {
  if (!impl_->started) return;
  impl_->stopping.store(true);
  impl_->slots_cv.notify_all();
  if (impl_->acceptor.joinable()) impl_->acceptor.join();

  // Unblock and join every reader first (recv returns 0 after shutdown):
  // once readers are gone, no new request can be dispatched.
  {
    std::lock_guard lock(impl_->conns_mu);
    for (auto& [id, conn] : impl_->conns) conn->sock.shutdown_both();
    for (auto& [id, conn] : impl_->conns)
      if (conn->reader.joinable()) conn->reader.join();
  }
  // Wait for every already-dispatched handler to finish — they reference
  // connections and tenants (the inflight decrement is the handler's last
  // touch of server state, so zero means safe teardown).
  {
    std::unique_lock lock(impl_->inflight_mu);
    impl_->inflight_cv.wait(lock, [&] { return impl_->inflight == 0; });
  }
  // Writers: drain staged replies, then exit via the reads_done condition.
  {
    std::lock_guard lock(impl_->conns_mu);
    for (auto& [id, conn] : impl_->conns) {
      conn->cv.notify_all();
      if (conn->writer.joinable()) conn->writer.join();
      server_metrics().active_connections.sub();
    }
    impl_->conns.clear();
  }
  impl_->listener.reset();
  impl_->started = false;
}

std::uint16_t SlicerServer::port() const {
  if (impl_->listener == nullptr) throw ProtocolError("server not started");
  return impl_->listener->port();
}

std::size_t SlicerServer::connection_count() const {
  std::lock_guard lock(impl_->conns_mu);
  return impl_->conns.size();
}

bool SlicerServer::tenant_banned(const std::string& name) const {
  const auto it = impl_->tenants.find(name);
  if (it == impl_->tenants.end())
    throw ProtocolError("unknown tenant: " + name);
  return impl_->tenant_is_banned(*it->second);
}

std::size_t SlicerServer::tenant_misbehavior(const std::string& name) const {
  const auto it = impl_->tenants.find(name);
  if (it == impl_->tenants.end())
    throw ProtocolError("unknown tenant: " + name);
  std::lock_guard lock(it->second->admission_mu);
  return it->second->misbehavior;
}

void SlicerServer::set_frame_tamper(FrameTamper tamper) {
  if (impl_->started) throw ProtocolError("set_frame_tamper after start");
  impl_->tamper = std::move(tamper);
}

}  // namespace slicer::net

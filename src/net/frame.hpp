// Length-prefixed binary framing for the Slicer wire protocol.
//
// One frame on the wire is
//
//   u32 length | u8 opcode | payload
//
// where `length` (big-endian, like every integer in common/serial) counts
// everything after itself — the opcode byte plus the payload — so
// `length == 1 + payload.size()`. The decoder is strict in both directions:
//   * a declared length of 0 (no opcode) or above the configured bound is a
//     DecodeError before any allocation happens — a forged length field can
//     never pick the reserve() size;
//   * decode_frame() on a standalone buffer rejects trailing bytes after
//     the framed payload, the same top-level rule every message codec in
//     common/serial enforces.
// Payload *content* is not interpreted here; the per-opcode codecs in
// net/protocol.hpp apply their own strict decoding (including their own
// trailing-byte checks).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace slicer::net {

/// Frame header size on the wire: the u32 length plus the opcode byte.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Default bound on `length` (opcode + payload). 64 MiB comfortably holds
/// the largest legitimate message (a bulk APPLY delta) while keeping a
/// forged length from looking like a 4 GiB allocation request.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// One decoded frame.
struct Frame {
  std::uint8_t opcode = 0;
  Bytes payload;

  bool operator==(const Frame&) const = default;
};

/// Encodes (opcode, payload) as one wire frame. Throws DecodeError when the
/// frame would exceed `max_frame_bytes`.
Bytes encode_frame(std::uint8_t opcode, BytesView payload,
                   std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Strict single-frame decode: the buffer must contain exactly one frame —
/// a short buffer or trailing bytes after the framed payload both throw
/// DecodeError.
Frame decode_frame(BytesView data,
                   std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Incremental decoder over a TCP byte stream: feed() appends received
/// bytes, next() yields completed frames in order. A malformed length
/// (zero, or above the bound) throws DecodeError immediately — the stream
/// cannot be resynchronized after that, so connections close on it.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(BytesView data);

  /// The next completed frame, or nullopt when more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size(); }

 private:
  std::size_t max_frame_bytes_;
  Bytes buf_;
};

}  // namespace slicer::net

// Per-opcode payload codecs of the Slicer wire protocol.
//
// The protocol reuses the canonical serialization from common/serial for
// every payload, so the bytes a CloudServer reply occupies on the wire are
// exactly the bytes the in-process codecs produce — the multiset-hash and
// prime-representative recomputation on the verifier side cannot drift
// between deployment modes. Requests occupy the low opcode range, replies
// set the high bit of their request's opcode, and kError is the one shared
// failure reply. Every decoder is strict: count bounds before allocation,
// minimal big-integer encodings (inherited from the message codecs), and a
// trailing-byte check on each top-level payload.
//
// A connection starts with HELLO (protocol magic + tenant id); everything
// else on that connection addresses the tenant's database. Versioning is
// carried by the magic string — a server that does not recognise it
// replies kError/"hello" and closes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/messages.hpp"
#include "core/owner.hpp"
#include "core/query.hpp"
#include "net/frame.hpp"

namespace slicer::net {

/// Protocol magic carried in the HELLO payload (bump on breaking change).
inline constexpr std::string_view kProtocolMagic = "slicer.net.v1";

/// Wire opcodes. Replies = request | 0x80.
enum class Op : std::uint8_t {
  kHello = 0x01,
  kApply = 0x02,
  kSearch = 0x03,
  kSearchAggregated = 0x04,
  kFetch = 0x05,
  kProve = 0x06,
  kPing = 0x07,
  kQueryPlan = 0x08,

  kHelloOk = 0x81,
  kApplyOk = 0x82,
  kSearchReply = 0x83,
  kSearchAggregatedReply = 0x84,
  kFetchReply = 0x85,
  kProveReply = 0x86,
  kPong = 0x87,
  kQueryPlanReply = 0x88,

  kError = 0xEE,
};

/// The reply opcode a request expects.
constexpr Op reply_op(Op request) {
  return static_cast<Op>(static_cast<std::uint8_t>(request) | 0x80);
}

std::string_view op_name(Op op);

// --- payload structs (each with a canonical codec) ----------------------

/// First frame on every connection: protocol magic + tenant id.
struct HelloRequest {
  std::string tenant;

  Bytes serialize() const;
  static HelloRequest deserialize(BytesView data);
  bool operator==(const HelloRequest&) const = default;
};

/// The server's HELLO acknowledgement: the tenant echoed back plus the
/// shape of its database (so a client can sanity-check shard agreement
/// before issuing queries).
struct HelloReply {
  std::string tenant;
  std::uint32_t shard_count = 1;
  std::uint64_t prime_count = 0;

  Bytes serialize() const;
  static HelloReply deserialize(BytesView data);
  bool operator==(const HelloReply&) const = default;
};

/// APPLY carries a core::UpdateOutput verbatim (its own canonical codec);
/// the reply reports the tenant's post-apply prime count (an idempotency
/// fingerprint the caller can compare across retries).
struct ApplyReply {
  std::uint64_t prime_count = 0;

  Bytes serialize() const;
  static ApplyReply deserialize(BytesView data);
  bool operator==(const ApplyReply&) const = default;
};

/// SEARCH / SEARCH_AGGREGATED request: the query's token list.
struct SearchRequest {
  std::vector<core::SearchToken> tokens;

  Bytes serialize() const;
  static SearchRequest deserialize(BytesView data);
  bool operator==(const SearchRequest&) const = default;
};

/// SEARCH reply: one TokenReply per token, in submission order.
struct SearchReply {
  std::vector<core::TokenReply> replies;

  Bytes serialize() const;
  static SearchReply deserialize(BytesView data);
};

/// FETCH request: one token (results only, no VO — the Fig. 5a/5c split).
struct FetchRequest {
  core::SearchToken token;

  Bytes serialize() const;
  static FetchRequest deserialize(BytesView data);
  bool operator==(const FetchRequest&) const = default;
};

/// FETCH reply: the token's encrypted results in traversal order.
struct FetchReply {
  std::vector<Bytes> results;

  Bytes serialize() const;
  static FetchReply deserialize(BytesView data);
  bool operator==(const FetchReply&) const = default;
};

/// PROVE request: a token plus the (possibly re-ordered) results to prove.
struct ProveRequest {
  core::SearchToken token;
  std::vector<Bytes> results;

  Bytes serialize() const;
  static ProveRequest deserialize(BytesView data);
  bool operator==(const ProveRequest&) const = default;
};

/// QUERY_PLAN request: the clause batch of one compiled query plan. Each
/// clause carries its read path (0 = legacy per-token VOs, 1 = aggregated)
/// and its search tokens, so one frame serves a whole boolean query.
struct QueryPlanRequest {
  std::vector<core::ClauseRequest> clauses;

  Bytes serialize() const;
  static QueryPlanRequest deserialize(BytesView data);
  bool operator==(const QueryPlanRequest&) const = default;
};

/// QUERY_PLAN reply: one ClauseReply per requested clause. Every entry is
/// tagged with its clause index, which the strict decoder requires to be
/// exactly 0, 1, 2, … — sequence-ordered per-clause replies. A batch that
/// permutes, omits or duplicates clause tags is a DecodeError at the
/// framing layer; a semantically swapped or stale clause *payload* still
/// decodes and is caught by the per-clause VO checks (core::verify_plan).
struct QueryPlanReply {
  std::vector<core::ClauseReply> clauses;

  Bytes serialize() const;
  static QueryPlanReply deserialize(BytesView data);
  bool operator==(const QueryPlanReply&) const = default;
};

/// The kError payload: a stable machine-readable code ("decode",
/// "protocol", "busy", "hello", "internal") plus a human-readable message.
struct ErrorReply {
  std::string code;
  std::string message;

  Bytes serialize() const;
  static ErrorReply deserialize(BytesView data);
  bool operator==(const ErrorReply&) const = default;
};

}  // namespace slicer::net

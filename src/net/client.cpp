#include "net/client.hpp"

#include <thread>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace slicer::net {

namespace {

struct ClientMetrics {
  metrics::Counter& requests = metrics::counter("net.client.requests");
  metrics::Counter& retries = metrics::counter("net.client.retries");
  metrics::Counter& reconnects = metrics::counter("net.client.reconnects");
  metrics::Counter& throttled = metrics::counter("net.client.throttled");
  metrics::Histogram& request_ns = metrics::histogram("net.client.request_ns");
};

ClientMetrics& client_metrics() {
  static ClientMetrics m;
  return m;
}

}  // namespace

SlicerClientChannel::SlicerClientChannel(std::uint16_t port, std::string tenant,
                                         ChannelConfig config)
    : port_(port),
      tenant_(std::move(tenant)),
      config_(config),
      decoder_(config.max_frame_bytes) {
  connect_and_hello();
}

SlicerClientChannel::~SlicerClientChannel() = default;

void SlicerClientChannel::connect_and_hello() {
  sock_ = connect_loopback(port_, config_.connect_timeout);
  sock_.set_recv_timeout(config_.recv_timeout);
  sock_.set_send_timeout(config_.send_timeout);
  decoder_ = FrameDecoder(config_.max_frame_bytes);

  HelloRequest req;
  req.tenant = tenant_;
  sock_.send_all(encode_frame(static_cast<std::uint8_t>(Op::kHello),
                              req.serialize(), config_.max_frame_bytes));
  const Frame reply = read_frame();
  if (static_cast<Op>(reply.opcode) == Op::kError) {
    ErrorReply err = ErrorReply::deserialize(reply.payload);
    throw ServerError(std::move(err.code), err.message);
  }
  if (static_cast<Op>(reply.opcode) != Op::kHelloOk)
    throw NetError("unexpected hello reply opcode " +
                   std::to_string(reply.opcode));
  hello_ = HelloReply::deserialize(reply.payload);
}

Frame SlicerClientChannel::read_frame() {
  for (;;) {
    std::optional<Frame> frame = decoder_.next();
    if (frame.has_value()) return std::move(*frame);
    const Bytes chunk = sock_.recv_some();
    if (chunk.empty()) throw NetError("connection closed by server");
    decoder_.feed(chunk);
  }
}

Bytes SlicerClientChannel::roundtrip_once(Op op, BytesView payload) {
  trace::Span span("net.client.request");
  metrics::ScopedTimer timer(client_metrics().request_ns);
  sock_.send_all(encode_frame(static_cast<std::uint8_t>(op), payload,
                              config_.max_frame_bytes));
  const Frame reply = read_frame();
  if (static_cast<Op>(reply.opcode) == Op::kError) {
    ErrorReply err = ErrorReply::deserialize(reply.payload);
    throw ServerError(std::move(err.code), err.message);
  }
  if (static_cast<Op>(reply.opcode) != reply_op(op))
    throw NetError("reply opcode mismatch: got " +
                   std::to_string(reply.opcode) + " for " +
                   std::string(op_name(op)));
  return reply.payload;
}

std::uint64_t SlicerClientChannel::backoff_for(int attempt) const {
  std::uint64_t delay = config_.base_backoff_ms;
  for (int i = 0; i < attempt && delay < config_.max_backoff_ms; ++i)
    delay <<= 1;
  return delay < config_.max_backoff_ms ? delay : config_.max_backoff_ms;
}

Bytes SlicerClientChannel::roundtrip_idempotent(Op op, BytesView payload) {
  ++stats_.requests;
  client_metrics().requests.add();
  std::string last;
  bool reconnect_needed = false;
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      const std::uint64_t delay = backoff_for(attempt - 1);
      stats_.backoff_ms += delay;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      ++stats_.retries;
      client_metrics().retries.add();
      // A throttled reply left the connection healthy — backoff alone is
      // enough. Only a transport failure forces a reconnect + re-HELLO.
      if (reconnect_needed) {
        try {
          connect_and_hello();
          ++stats_.reconnects;
          client_metrics().reconnects.add();
          reconnect_needed = false;
        } catch (const NetError& e) {
          last = e.what();
          continue;
        }
      }
    }
    try {
      return roundtrip_once(op, payload);
    } catch (const NetError& e) {
      last = e.what();
      reconnect_needed = true;
    } catch (const ServerError& e) {
      // Per-tenant rate limiting is a retryable condition; every other
      // server-reported code means the request itself is at fault.
      if (e.code() != "throttled") throw;
      ++stats_.throttled;
      client_metrics().throttled.add();
      last = e.what();
    }
  }
  throw NetError(std::string(op_name(op)) + " failed after " +
                 std::to_string(config_.max_attempts) +
                 " attempts: " + (last.empty() ? "no attempt" : last));
}

std::uint64_t SlicerClientChannel::apply(const core::UpdateOutput& update) {
  ++stats_.requests;
  client_metrics().requests.add();
  const Bytes reply = roundtrip_once(Op::kApply, update.serialize());
  return ApplyReply::deserialize(reply).prime_count;
}

std::vector<core::TokenReply> SlicerClientChannel::search(
    const std::vector<core::SearchToken>& tokens) {
  SearchRequest req;
  req.tokens = tokens;
  const Bytes reply = roundtrip_idempotent(Op::kSearch, req.serialize());
  return SearchReply::deserialize(reply).replies;
}

core::QueryReply SlicerClientChannel::search_aggregated(
    const std::vector<core::SearchToken>& tokens) {
  SearchRequest req;
  req.tokens = tokens;
  const Bytes reply =
      roundtrip_idempotent(Op::kSearchAggregated, req.serialize());
  return core::QueryReply::deserialize(reply);
}

QueryPlanReply SlicerClientChannel::query_plan(
    const QueryPlanRequest& request) {
  const Bytes reply =
      roundtrip_idempotent(Op::kQueryPlan, request.serialize());
  return QueryPlanReply::deserialize(reply);
}

std::vector<Bytes> SlicerClientChannel::fetch(const core::SearchToken& token) {
  FetchRequest req;
  req.token = token;
  const Bytes reply = roundtrip_idempotent(Op::kFetch, req.serialize());
  return FetchReply::deserialize(reply).results;
}

core::TokenReply SlicerClientChannel::prove(
    const core::SearchToken& token, const std::vector<Bytes>& results) {
  ProveRequest req;
  req.token = token;
  req.results = results;
  const Bytes reply = roundtrip_idempotent(Op::kProve, req.serialize());
  return core::TokenReply::deserialize(reply);
}

void SlicerClientChannel::ping() {
  roundtrip_idempotent(Op::kPing, BytesView{});
}

}  // namespace slicer::net

// SlicerServer: a standalone TCP front-end over CloudServer.
//
// Deployment shape (one process, loopback TCP):
//
//   acceptor thread ──accept──▶ per-connection reader thread
//                                  │  FrameDecoder + strict payload decode
//                                  │  hello → tenant binding (inline)
//                                  ▼
//                        ThreadPool::submit(handler)   ← SLICER_NET_THREADS
//                                  │                      admission slots
//                                  ▼
//                     per-connection writer thread
//                        (seq-ordered reply queue → send_all)
//
// Requests are decoded on the connection's reader thread and dispatched to
// the process-wide ThreadPool, so an expensive request (a bulk APPLY, a
// many-token aggregated search) from one tenant never blocks another
// tenant's reader. Replies are staged in a per-connection sequence-ordered
// queue drained by a dedicated writer thread: handlers complete in any
// order, but each connection observes replies in request order, and a slow
// or stalled verifier only backs up its own writer (kernel send timeout
// bounds the stall; the dispatch slots it holds are released the moment
// its replies are staged, not when they hit the wire).
//
// Tenancy: every connection starts with a HELLO frame naming a tenant; the
// tenant's CloudServer is guarded by a shared_mutex — searches/fetches/
// proofs run concurrently (CloudServer is internally thread-safe for const
// access), APPLY takes the tenant exclusively. Tenants are registered
// before start() and never share state.
//
// Backpressure and limits: at most `max_connections` live connections
// (excess accepts get a kError/"busy" frame and an immediate close); at
// most `dispatch_concurrency` requests in the pool at once — the admission
// slot is acquired on the reader thread, so a flooding client is paused in
// its own socket buffer (TCP backpressure) instead of ballooning the queue.
//
// Per-tenant abuse control: every tenant owns a token bucket
// (tenant_qps / tenant_burst; the qps defaults to the SLICER_TENANT_QPS
// knob, 0 = unlimited) consulted on the reader thread before dispatch — an
// empty bucket gets a kError/"throttled" reply and the connection stays
// open (the client backs off and retries). Misbehavior accrues on the
// tenant, not the connection: malformed frames and undecodable payloads
// post-HELLO score +20, unknown opcodes +10, oversized payloads (above
// max_request_bytes) +40; crossing ban_threshold bans the tenant for
// ban_duration — every further request (and every reconnect HELLO) is
// answered kError/"banned" and the connection is closed. Because the score
// lives on the tenant, a one-tenant flood cannot consume another tenant's
// admission budget, and reconnect-and-misbehave loops still converge on a
// ban. The `net.tenant.flood` fault site drains the firing tenant's bucket
// (and throttles the hit request) so the Byzantine soak can starve one
// tenant on demand and assert a victim tenant's latency stays bounded.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cloud.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace slicer::net {

/// SlicerServer tuning. Field defaults are the production values; port and
/// dispatch_concurrency additionally honour environment knobs (see fields).
struct ServerConfig {
  /// TCP port to bind on 127.0.0.1. 0 defers to the SLICER_PORT knob, and
  /// when that is unset too, the kernel assigns an ephemeral port (read it
  /// back via port() — the test/bench default).
  std::uint16_t port = 0;

  /// Live-connection cap; accepts beyond it are answered with a
  /// kError/"busy" frame and closed.
  std::size_t max_connections = 64;

  /// Cap on requests concurrently dispatched into the thread pool.
  /// 0 defers to the SLICER_NET_THREADS knob (default: the pool's lane
  /// count), clamped to [1, 4096].
  std::size_t dispatch_concurrency = 0;

  /// Reader-side receive timeout: a connection idle (or mid-frame-stalled)
  /// longer than this is closed.
  std::chrono::milliseconds idle_timeout{30'000};

  /// Writer-side kernel send timeout: bounds how long a stalled peer can
  /// pin its writer thread.
  std::chrono::milliseconds send_timeout{10'000};

  /// Frame-size bound enforced on receive (forged lengths) and send.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Per-tenant sustained request rate (token-bucket refill, requests per
  /// second). 0 defers to the SLICER_TENANT_QPS knob (clamped to
  /// [0, 1'000'000]); when that is unset too, admission is unlimited.
  std::size_t tenant_qps = 0;

  /// Token-bucket capacity: the burst a tenant may issue before the
  /// sustained rate applies. Ignored when admission is unlimited.
  std::size_t tenant_burst = 32;

  /// Misbehavior score at which a tenant is banned (malformed frame or
  /// undecodable payload +20, unknown opcode +10, oversized payload +40).
  std::size_t ban_threshold = 100;

  /// How long a ban lasts; while banned, every request and every HELLO
  /// from the tenant is answered kError/"banned" and the connection closed.
  std::chrono::milliseconds ban_duration{60'000};

  /// Soft per-request payload bound: a frame whose payload exceeds this
  /// scores oversized-payload misbehavior (+40) instead of being
  /// processed. 0 defers to max_frame_bytes (i.e. only the hard framing
  /// bound applies, which kills the stream outright).
  std::size_t max_request_bytes = 0;
};

/// The wire-protocol server. Lifecycle: construct → add_tenant()* →
/// start() → (serve) → stop() (idempotent; the destructor calls it).
class SlicerServer {
 public:
  explicit SlicerServer(ServerConfig config = {});
  ~SlicerServer();
  SlicerServer(const SlicerServer&) = delete;
  SlicerServer& operator=(const SlicerServer&) = delete;

  /// Registers a tenant database. Must be called before start().
  void add_tenant(const std::string& name,
                  std::unique_ptr<core::CloudServer> cloud);

  /// Read access to a tenant's CloudServer (test assertions against
  /// server-side state). Unsynchronized — call only while no APPLY can be
  /// in flight. Throws ProtocolError for an unknown tenant.
  const core::CloudServer& tenant(const std::string& name) const;

  /// Binds, listens and spawns the acceptor. Throws NetError when the
  /// port cannot be bound.
  void start();

  /// Stops accepting, unblocks every connection, waits for all dispatched
  /// handlers to finish, and joins all threads. Idempotent.
  void stop();

  /// The bound port (valid after start()).
  std::uint16_t port() const;

  /// Number of currently live connections (diagnostics/tests).
  std::size_t connection_count() const;

  /// Whether a tenant is currently banned (diagnostics/tests). Throws
  /// ProtocolError for an unknown tenant.
  bool tenant_banned(const std::string& name) const;

  /// A tenant's current misbehavior score (diagnostics/tests; resets to 0
  /// when a ban trips). Throws ProtocolError for an unknown tenant.
  std::size_t tenant_misbehavior(const std::string& name) const;

  /// Byzantine test hook: maps each outgoing reply frame to the list of
  /// frames actually written (empty = drop, >1 = duplicate/inject, mutated
  /// bytes = corruption). Runs on writer threads with the frame already
  /// sequence-ordered, so a stateful hook can also delay/reorder across a
  /// connection's replies. Set before start(); pass nullptr to clear.
  using FrameTamper = std::function<std::vector<Bytes>(const Bytes& frame)>;
  void set_frame_tamper(FrameTamper tamper);

 private:
  struct Tenant;
  struct Connection;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace slicer::net

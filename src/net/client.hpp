// SlicerClientChannel: a blocking client over the Slicer wire protocol.
//
// One channel = one TCP connection to a SlicerServer, bound to one tenant
// by the HELLO handshake. Requests are synchronous (send frame, wait for
// the matching reply opcode); transport failures on idempotent requests
// (search / fetch / prove / ping — all read-only) are retried with the
// same capped-exponential-backoff policy shape as chain::TxSubmitter,
// reconnecting and re-issuing HELLO between attempts. APPLY is NOT
// auto-retried: it mutates the tenant, and a timeout does not reveal
// whether the server applied the batch — the caller disambiguates via
// ApplyReply.prime_count (a retry-idempotency fingerprint) or re-connects
// and inspects hello().prime_count.
//
// Protocol-level failures arrive as kError frames and throw ServerError
// carrying the server's stable error code; these are never retried — the
// request itself is at fault, not the transport — with one exception:
// code "throttled" (per-tenant rate limiting) is a retryable condition.
// The server kept the connection open, so the channel backs off and
// re-issues the request on the same connection without a reconnect.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "core/messages.hpp"
#include "core/owner.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace slicer::net {

/// A kError reply from the server. `code()` is the stable machine-readable
/// code ("decode", "protocol", "busy", "hello", "internal", "throttled",
/// "banned").
class ServerError : public Error {
 public:
  ServerError(std::string code, const std::string& message)
      : Error("server [" + code + "]: " + message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Channel tuning. The retry policy mirrors chain::SubmitterConfig.
struct ChannelConfig {
  int max_attempts = 4;                ///< tries per idempotent request
  std::uint64_t base_backoff_ms = 10;  ///< first retry delay
  std::uint64_t max_backoff_ms = 500;  ///< exponential backoff cap
  std::chrono::milliseconds connect_timeout{2'000};
  std::chrono::milliseconds recv_timeout{30'000};
  std::chrono::milliseconds send_timeout{10'000};
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Per-channel observability (mirrors chain::SubmitterStats).
struct ChannelStats {
  std::uint64_t requests = 0;    ///< requests issued (first attempts)
  std::uint64_t retries = 0;     ///< extra attempts after transport errors
  std::uint64_t reconnects = 0;  ///< connections established after the first
  std::uint64_t backoff_ms = 0;  ///< total backoff slept
  std::uint64_t throttled = 0;   ///< kError/"throttled" replies absorbed
};

/// A connected, HELLO-bound client channel.
class SlicerClientChannel {
 public:
  /// Connects to 127.0.0.1:`port` and performs the HELLO handshake for
  /// `tenant`. Throws NetError (transport) or ServerError (rejected hello).
  SlicerClientChannel(std::uint16_t port, std::string tenant,
                      ChannelConfig config = {});
  ~SlicerClientChannel();
  SlicerClientChannel(SlicerClientChannel&&) noexcept = default;
  SlicerClientChannel(const SlicerClientChannel&) = delete;
  SlicerClientChannel& operator=(const SlicerClientChannel&) = delete;

  /// The server's HELLO acknowledgement from the current connection.
  const HelloReply& hello() const { return hello_; }
  const ChannelStats& stats() const { return stats_; }

  /// Ships an owner update batch. Never auto-retried (see file comment);
  /// returns the tenant's post-apply prime count.
  std::uint64_t apply(const core::UpdateOutput& update);

  /// Legacy per-token search (results + one VO per token). Retried.
  std::vector<core::TokenReply> search(
      const std::vector<core::SearchToken>& tokens);

  /// Aggregated search (one folded witness per touched shard). Retried.
  core::QueryReply search_aggregated(
      const std::vector<core::SearchToken>& tokens);

  /// Whole-plan clause batch: every clause of a compiled boolean query in
  /// one round trip, each served on its requested read path. Read-only,
  /// so retried like search.
  QueryPlanReply query_plan(const QueryPlanRequest& request);

  /// Results only (no VO). Retried.
  std::vector<Bytes> fetch(const core::SearchToken& token);

  /// VO for previously fetched results. Retried.
  core::TokenReply prove(const core::SearchToken& token,
                         const std::vector<Bytes>& results);

  /// Liveness probe. Retried.
  void ping();

  /// min(base << attempt, max) — capped exponential backoff (exposed for
  /// tests, mirroring TxSubmitter::backoff_for).
  std::uint64_t backoff_for(int attempt) const;

 private:
  /// Sends `payload` under `op` and reads frames until the matching reply
  /// (or kError → ServerError). No retry at this layer.
  Bytes roundtrip_once(Op op, BytesView payload);

  /// roundtrip_once wrapped in the retry/backoff/reconnect policy.
  Bytes roundtrip_idempotent(Op op, BytesView payload);

  /// Reads one complete frame from the socket.
  Frame read_frame();

  void connect_and_hello();

  std::uint16_t port_;
  std::string tenant_;
  ChannelConfig config_;
  ChannelStats stats_;
  Socket sock_;
  FrameDecoder decoder_;
  HelloReply hello_;
};

}  // namespace slicer::net

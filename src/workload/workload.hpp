// Workload generation for benchmarks and examples.
//
// The paper evaluates on uniformly random values; real numerical columns
// (ages, transaction amounts, sensor readings) are skewed, and Slicer's
// costs are sensitive to the *distinct-keyword* count, which duplicates
// suppress. This module provides the distributions the distribution
// ablation sweeps (bench/ablation_distribution.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "crypto/drbg.hpp"

namespace slicer::workload {

/// Value distributions over the b-bit domain.
enum class Distribution {
  kUniform,    // the paper's workload
  kZipf,       // heavy head: few values account for most records
  kGaussian,   // concentrated around the domain midpoint
  kClustered,  // a handful of tight clusters (e.g. price points)
};

const char* distribution_name(Distribution d);

/// Generates `count` records with `bits`-wide values drawn from `dist`.
/// Deterministic given the DRBG state.
std::vector<core::Record> generate(crypto::Drbg& rng, Distribution dist,
                                   std::size_t bits, std::size_t count,
                                   std::uint64_t id_base = 1);

/// Draws one value from `dist` (the primitive behind generate).
std::uint64_t sample_value(crypto::Drbg& rng, Distribution dist,
                           std::size_t bits);

/// Number of distinct values in a record set (keyword-pressure metric).
std::size_t distinct_values(const std::vector<core::Record>& records);

}  // namespace slicer::workload

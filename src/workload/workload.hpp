// Workload generation for benchmarks and examples.
//
// The paper evaluates on uniformly random values; real numerical columns
// (ages, transaction amounts, sensor readings) are skewed, and Slicer's
// costs are sensitive to the *distinct-keyword* count, which duplicates
// suppress. This module provides the distributions the distribution
// ablation sweeps (bench/ablation_distribution.cpp).
// Multi-attribute workloads (generate_multi) extend this to the boolean
// query planner's needs: per-attribute distributions with tunable
// correlation to the primary attribute, so AND/OR plans see realistic
// selectivity interplay (a conjunction over independent attributes is
// near-empty; over correlated ones it is not).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "crypto/drbg.hpp"

namespace slicer::workload {

/// Value distributions over the b-bit domain.
enum class Distribution {
  kUniform,    // the paper's workload
  kZipf,       // heavy head: few values account for most records
  kGaussian,   // concentrated around the domain midpoint
  kClustered,  // a handful of tight clusters (e.g. price points)
};

const char* distribution_name(Distribution d);

/// Generates `count` records with `bits`-wide values drawn from `dist`.
/// Deterministic given the DRBG state.
std::vector<core::Record> generate(crypto::Drbg& rng, Distribution dist,
                                   std::size_t bits, std::size_t count,
                                   std::uint64_t id_base = 1);

/// Draws one value from `dist` (the primitive behind generate).
std::uint64_t sample_value(crypto::Drbg& rng, Distribution dist,
                           std::size_t bits);

/// Number of distinct values in a record set (keyword-pressure metric).
std::size_t distinct_values(const std::vector<core::Record>& records);

/// One attribute of a multi-attribute workload.
struct AttributeSpec {
  std::string name;
  std::size_t bits = 16;
  Distribution dist = Distribution::kUniform;
  /// Correlation knob ρ ∈ [0, 1] against the FIRST (primary) attribute:
  /// each record draws this attribute as the primary value rescaled into
  /// this attribute's domain with probability ρ, and as an independent
  /// `dist` sample otherwise. Ignored on the primary attribute itself.
  /// ρ=0 gives independent columns, ρ=1 a deterministic function of the
  /// primary — the blend interpolates the rank correlation between them.
  double correlation = 0.0;
};

/// Generates `count` multi-attribute records per `attrs` (first entry is
/// the primary attribute). Deterministic given the DRBG state.
std::vector<core::MultiRecord> generate_multi(
    crypto::Drbg& rng, const std::vector<AttributeSpec>& attrs,
    std::size_t count, std::uint64_t id_base = 1);

/// Sample Pearson correlation of two attributes over the records carrying
/// both (0 when fewer than two such records, or either column is
/// constant). Validates the generate_multi correlation knob.
double correlation_estimate(const std::vector<core::MultiRecord>& records,
                            const std::string& a, const std::string& b);

}  // namespace slicer::workload

#include "workload/workload.hpp"

#include <cmath>
#include <unordered_set>

#include "common/errors.hpp"
#include "sore/sore.hpp"

namespace slicer::workload {

namespace {

std::uint64_t domain_of(std::size_t bits) {
  if (bits == 0 || bits > 63)
    throw CryptoError("workload: bits must be in [1, 63]");
  return 1ull << bits;
}

/// Zipf(s=1) over a 1024-rank head mapped across the domain: rank r gets
/// probability ∝ 1/r. Sampled by inverse CDF over precomputed weights.
std::uint64_t sample_zipf(crypto::Drbg& rng, std::uint64_t domain) {
  constexpr std::size_t kRanks = 1024;
  static const std::vector<double> cdf = [] {
    std::vector<double> out(kRanks);
    double total = 0;
    for (std::size_t r = 0; r < kRanks; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      out[r] = total;
    }
    for (double& v : out) v /= total;
    return out;
  }();
  const double u =
      static_cast<double>(rng.uniform(1u << 30)) / static_cast<double>(1u << 30);
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const std::size_t rank =
      static_cast<std::size_t>(std::distance(cdf.begin(), it));
  // Spread ranks deterministically across the domain so the head values are
  // scattered, not consecutive.
  const std::uint64_t stride = std::max<std::uint64_t>(1, domain / kRanks);
  return (static_cast<std::uint64_t>(rank) * stride * 2'654'435'761ull) %
         domain;
}

/// Approximate Gaussian via Irwin–Hall (sum of 8 uniforms), centred on the
/// domain midpoint with σ ≈ domain/8.
std::uint64_t sample_gaussian(crypto::Drbg& rng, std::uint64_t domain) {
  double sum = 0;
  for (int i = 0; i < 8; ++i)
    sum += static_cast<double>(rng.uniform(1u << 20)) /
           static_cast<double>(1u << 20);
  // sum ∈ [0,8], mean 4, sd sqrt(8/12)≈0.816.
  const double z = (sum - 4.0) / 0.8165;  // ~N(0,1)
  const double centred =
      static_cast<double>(domain) / 2.0 + z * static_cast<double>(domain) / 8.0;
  if (centred < 0) return 0;
  if (centred >= static_cast<double>(domain)) return domain - 1;
  return static_cast<std::uint64_t>(centred);
}

std::uint64_t sample_clustered(crypto::Drbg& rng, std::uint64_t domain) {
  constexpr std::uint64_t kClusters = 8;
  // Fixed, scattered cluster centres; tight spread around each.
  const std::uint64_t cluster = rng.uniform(kClusters);
  const std::uint64_t centre =
      (cluster * 2'654'435'761ull + 12'345) % domain;
  const std::uint64_t spread = std::max<std::uint64_t>(1, domain / 256);
  const std::uint64_t offset = rng.uniform(2 * spread);
  const std::uint64_t lo = centre > spread ? centre - spread : 0;
  const std::uint64_t v = lo + offset;
  return v < domain ? v : domain - 1;
}

}  // namespace

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipf: return "zipf";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kClustered: return "clustered";
  }
  return "?";
}

std::uint64_t sample_value(crypto::Drbg& rng, Distribution dist,
                           std::size_t bits) {
  const std::uint64_t domain = domain_of(bits);
  switch (dist) {
    case Distribution::kUniform: return rng.uniform(domain);
    case Distribution::kZipf: return sample_zipf(rng, domain);
    case Distribution::kGaussian: return sample_gaussian(rng, domain);
    case Distribution::kClustered: return sample_clustered(rng, domain);
  }
  throw CryptoError("workload: unknown distribution");
}

std::vector<core::Record> generate(crypto::Drbg& rng, Distribution dist,
                                   std::size_t bits, std::size_t count,
                                   std::uint64_t id_base) {
  std::vector<core::Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(core::Record{id_base + i, sample_value(rng, dist, bits)});
  return out;
}

std::size_t distinct_values(const std::vector<core::Record>& records) {
  std::unordered_set<std::uint64_t> seen;
  for (const core::Record& r : records) seen.insert(r.value);
  return seen.size();
}

}  // namespace slicer::workload

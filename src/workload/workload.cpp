#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/errors.hpp"
#include "sore/sore.hpp"

namespace slicer::workload {

namespace {

std::uint64_t domain_of(std::size_t bits) {
  if (bits == 0 || bits > 63)
    throw CryptoError("workload: bits must be in [1, 63]");
  return 1ull << bits;
}

/// Zipf(s=1) over a 1024-rank head mapped across the domain: rank r gets
/// probability ∝ 1/r. Sampled by inverse CDF over precomputed weights.
std::uint64_t sample_zipf(crypto::Drbg& rng, std::uint64_t domain) {
  constexpr std::size_t kRanks = 1024;
  static const std::vector<double> cdf = [] {
    std::vector<double> out(kRanks);
    double total = 0;
    for (std::size_t r = 0; r < kRanks; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      out[r] = total;
    }
    for (double& v : out) v /= total;
    return out;
  }();
  const double u =
      static_cast<double>(rng.uniform(1u << 30)) / static_cast<double>(1u << 30);
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const std::size_t rank =
      static_cast<std::size_t>(std::distance(cdf.begin(), it));
  // Spread ranks deterministically across the domain so the head values are
  // scattered, not consecutive.
  const std::uint64_t stride = std::max<std::uint64_t>(1, domain / kRanks);
  return (static_cast<std::uint64_t>(rank) * stride * 2'654'435'761ull) %
         domain;
}

/// Approximate Gaussian via Irwin–Hall (sum of 8 uniforms), centred on the
/// domain midpoint with σ ≈ domain/8.
std::uint64_t sample_gaussian(crypto::Drbg& rng, std::uint64_t domain) {
  double sum = 0;
  for (int i = 0; i < 8; ++i)
    sum += static_cast<double>(rng.uniform(1u << 20)) /
           static_cast<double>(1u << 20);
  // sum ∈ [0,8], mean 4, sd sqrt(8/12)≈0.816.
  const double z = (sum - 4.0) / 0.8165;  // ~N(0,1)
  const double centred =
      static_cast<double>(domain) / 2.0 + z * static_cast<double>(domain) / 8.0;
  if (centred < 0) return 0;
  if (centred >= static_cast<double>(domain)) return domain - 1;
  return static_cast<std::uint64_t>(centred);
}

std::uint64_t sample_clustered(crypto::Drbg& rng, std::uint64_t domain) {
  constexpr std::uint64_t kClusters = 8;
  // Fixed, scattered cluster centres; tight spread around each.
  const std::uint64_t cluster = rng.uniform(kClusters);
  const std::uint64_t centre =
      (cluster * 2'654'435'761ull + 12'345) % domain;
  const std::uint64_t spread = std::max<std::uint64_t>(1, domain / 256);
  const std::uint64_t offset = rng.uniform(2 * spread);
  const std::uint64_t lo = centre > spread ? centre - spread : 0;
  const std::uint64_t v = lo + offset;
  return v < domain ? v : domain - 1;
}

}  // namespace

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::kUniform: return "uniform";
    case Distribution::kZipf: return "zipf";
    case Distribution::kGaussian: return "gaussian";
    case Distribution::kClustered: return "clustered";
  }
  return "?";
}

std::uint64_t sample_value(crypto::Drbg& rng, Distribution dist,
                           std::size_t bits) {
  const std::uint64_t domain = domain_of(bits);
  switch (dist) {
    case Distribution::kUniform: return rng.uniform(domain);
    case Distribution::kZipf: return sample_zipf(rng, domain);
    case Distribution::kGaussian: return sample_gaussian(rng, domain);
    case Distribution::kClustered: return sample_clustered(rng, domain);
  }
  throw CryptoError("workload: unknown distribution");
}

std::vector<core::Record> generate(crypto::Drbg& rng, Distribution dist,
                                   std::size_t bits, std::size_t count,
                                   std::uint64_t id_base) {
  std::vector<core::Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(core::Record{id_base + i, sample_value(rng, dist, bits)});
  return out;
}

std::size_t distinct_values(const std::vector<core::Record>& records) {
  std::unordered_set<std::uint64_t> seen;
  for (const core::Record& r : records) seen.insert(r.value);
  return seen.size();
}

std::vector<core::MultiRecord> generate_multi(
    crypto::Drbg& rng, const std::vector<AttributeSpec>& attrs,
    std::size_t count, std::uint64_t id_base) {
  if (attrs.empty())
    throw CryptoError("workload: generate_multi needs at least one attribute");
  const std::uint64_t primary_domain = domain_of(attrs.front().bits);
  std::vector<core::MultiRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::MultiRecord record;
    record.id = id_base + i;
    record.values.reserve(attrs.size());
    const std::uint64_t primary =
        sample_value(rng, attrs.front().dist, attrs.front().bits);
    record.values.push_back(core::AttributeValue{attrs.front().name, primary});
    for (std::size_t a = 1; a < attrs.size(); ++a) {
      const AttributeSpec& spec = attrs[a];
      const std::uint64_t domain = domain_of(spec.bits);
      // ρ-blend: follow the primary (rescaled into this domain) with
      // probability ρ, draw independently otherwise. The coin is drawn
      // unconditionally so the stream layout — and thus every subsequent
      // value — does not depend on ρ.
      constexpr std::uint64_t kCoinScale = 1u << 20;
      const bool follow =
          rng.uniform(kCoinScale) <
          static_cast<std::uint64_t>(
              std::clamp(spec.correlation, 0.0, 1.0) *
              static_cast<double>(kCoinScale));
      const std::uint64_t independent =
          sample_value(rng, spec.dist, spec.bits);
      const std::uint64_t rescaled = static_cast<std::uint64_t>(
          static_cast<double>(primary) / static_cast<double>(primary_domain) *
          static_cast<double>(domain));
      record.values.push_back(core::AttributeValue{
          spec.name, follow ? std::min(rescaled, domain - 1) : independent});
    }
    out.push_back(std::move(record));
  }
  return out;
}

double correlation_estimate(const std::vector<core::MultiRecord>& records,
                            const std::string& a, const std::string& b) {
  std::vector<double> xs, ys;
  for (const core::MultiRecord& r : records) {
    const std::uint64_t* x = nullptr;
    const std::uint64_t* y = nullptr;
    for (const core::AttributeValue& av : r.values) {
      if (av.attribute == a) x = &av.value;
      if (av.attribute == b) y = &av.value;
    }
    if (x != nullptr && y != nullptr) {
      xs.push_back(static_cast<double>(*x));
      ys.push_back(static_cast<double>(*y));
    }
  }
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace slicer::workload

#include "common/env.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

namespace slicer::env {

namespace {

/// One diagnostic per knob per process: repeated reads of a misconfigured
/// knob (some are consulted per-construction) must not flood stderr.
void diagnose_once(const char* name, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string>* reported = new std::set<std::string>();
  const std::lock_guard lock(mu);
  if (!reported->insert(name).second) return;
  std::fprintf(stderr, "slicer: %s: %s\n", name, message.c_str());
}

}  // namespace

std::size_t size_knob(const char* name, std::size_t fallback,
                      std::size_t min_value, std::size_t max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  // strtoull is laxer than the documented contract (leading whitespace,
  // '+'/'-' signs) — require the value to start with a digit and to be
  // consumed entirely.
  if (!std::isdigit(static_cast<unsigned char>(raw[0])) || end == raw ||
      *end != '\0' || errno == ERANGE) {
    diagnose_once(name, "ignoring malformed value \"" + std::string(raw) +
                            "\" (want an integer in [" +
                            std::to_string(min_value) + ", " +
                            std::to_string(max_value) + "]); using default " +
                            std::to_string(fallback));
    return fallback;
  }
  if (parsed < min_value || parsed > max_value) {
    const std::size_t clamped =
        parsed < min_value ? min_value : max_value;
    diagnose_once(name, "clamping out-of-range value " + std::string(raw) +
                            " into [" + std::to_string(min_value) + ", " +
                            std::to_string(max_value) + "] → " +
                            std::to_string(clamped));
    return clamped;
  }
  return static_cast<std::size_t>(parsed);
}

bool flag_knob(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' && std::strcmp(raw, "0") != 0;
}

}  // namespace slicer::env

#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/env.hpp"
#include "common/metrics.hpp"

namespace slicer {

namespace {

/// Depth of ScopedSerial guards on this thread. Thread-local so a guard in
/// a benchmark thread never affects concurrently running pool users.
thread_local int serial_depth = 0;

/// Test/bench override of the process-wide pool (see ScopedPool).
std::atomic<ThreadPool*> pool_override{nullptr};

std::size_t configured_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return env::size_knob("SLICER_THREADS", hw == 0 ? 1 : hw, 1, 4096);
}

/// Shared state of one parallel_for: an index dispenser plus completion
/// accounting. Helpers hold it via shared_ptr so a queued closure that is
/// popped after the job finished finds an exhausted dispenser and returns.
struct Job {
  std::size_t n = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> abort{false};
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr error;

  /// Claims and runs chunks until the dispenser is exhausted.
  void run_chunks() {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain);
      if (lo >= n) return;
      const std::size_t hi = std::min(lo + grain, n);
      if (!abort.load(std::memory_order_relaxed)) {
        try {
          for (std::size_t i = lo; i < hi; ++i) (*body)(i);
        } catch (...) {
          abort.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(m);
          if (!error) error = std::current_exception();
        }
      }
      const std::size_t completed =
          done.fetch_add(hi - lo, std::memory_order_acq_rel) + (hi - lo);
      if (completed == n) {
        std::lock_guard<std::mutex> lock(m);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::instance() {
  if (ThreadPool* p = pool_override.load(std::memory_order_acquire)) return *p;
  static ThreadPool pool(configured_threads());
  return pool;
}

bool ThreadPool::is_serial() const {
  return workers_.empty() || serial_depth > 0;
}

void ThreadPool::worker_loop() {
  static metrics::Counter& helpers_run =
      metrics::counter("common.thread_pool.helpers_run");
  static metrics::Gauge& queue_depth =
      metrics::gauge("common.thread_pool.queue_depth");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    }
    helpers_run.add();
    task();
  }
}

void ThreadPool::enqueue_helpers(std::size_t count,
                                 const std::function<void()>& helper) {
  static metrics::Counter& helpers_enqueued =
      metrics::counter("common.thread_pool.helpers_enqueued");
  static metrics::Gauge& queue_depth =
      metrics::gauge("common.thread_pool.queue_depth");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < count; ++i) queue_.push_back(helper);
    queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  helpers_enqueued.add(count);
  if (count == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  static metrics::Counter& inline_jobs =
      metrics::counter("common.thread_pool.inline_jobs");
  static metrics::Counter& parallel_jobs =
      metrics::counter("common.thread_pool.parallel_jobs");
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (is_serial() || n <= grain) {
    inline_jobs.add();
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  parallel_jobs.add();

  auto job = std::make_shared<Job>();
  job->n = n;
  job->grain = grain;
  job->body = &body;

  // One helper per worker, capped by the number of chunks beyond the one
  // the caller will take itself.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  enqueue_helpers(helpers, [job] { job->run_chunks(); });

  // The caller works the same dispenser, so the job progresses even when
  // all workers are occupied by other (possibly enclosing) jobs.
  job->run_chunks();

  std::unique_lock<std::mutex> lock(job->m);
  job->cv.wait(lock, [&job] { return job->done.load() == job->n; });
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::submit(std::function<void()> task) {
  static metrics::Counter& submitted =
      metrics::counter("common.thread_pool.tasks_submitted");
  submitted.add();
  if (workers_.empty()) {
    // A single-lane pool has nobody to hand the task to: run it here, now.
    task();
    return;
  }
  enqueue_helpers(1, task);
}

void ThreadPool::invoke2(const std::function<void()>& a,
                         const std::function<void()>& b) {
  if (is_serial()) {
    a();
    b();
    return;
  }
  parallel_for(2, [&](std::size_t i) {
    if (i == 0) {
      a();
    } else {
      b();
    }
  });
}

ThreadPool::ScopedSerial::ScopedSerial() { ++serial_depth; }
ThreadPool::ScopedSerial::~ScopedSerial() { --serial_depth; }

ThreadPool::ScopedPool::ScopedPool(std::size_t threads)
    : pool_(threads),
      previous_(pool_override.exchange(&pool_, std::memory_order_acq_rel)) {}

ThreadPool::ScopedPool::~ScopedPool() {
  pool_override.store(previous_, std::memory_order_release);
}

}  // namespace slicer

// Structured observability: named counters, gauges and log₂-bucketed
// latency histograms.
//
// Every protocol phase declares its instruments once (a function-local
// static reference into the process-wide registry) and updates them inline.
// The hot path mirrors common/fault.hpp's site pattern: with metrics
// disabled an update is ONE relaxed atomic load plus a predicted branch
// (~1–2 ns), so production and benchmark binaries pay nothing unless the
// operator opts in. With metrics enabled, updates are lock-free relaxed
// atomic adds — safe from any thread, including inside parallel regions.
//
// Enablement comes from the SLICER_METRICS environment variable (any
// non-empty value; "json" additionally makes slicer_cli dump a snapshot on
// exit) or from metrics::set_enabled() / ScopedMetrics (tests, benches).
//
// Snapshots are deterministic: instruments are reported in lexicographic
// name order, so `snapshot_json()` is byte-stable for a given set of
// recorded values — the benchmark emitters embed it as their "phases"
// section and CI diff-checks its schema.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace slicer::metrics {

/// True when recording is on — the only check on the hot path.
bool enabled();

/// Turns recording on/off process-wide (SLICER_METRICS seeds the initial
/// state on first registry use).
void set_enabled(bool on);

/// Zeroes every registered instrument (registration is permanent — an
/// instrument's identity is its name; reset only clears the recorded
/// values). Tests and the phase-breakdown bench call this between phases.
void reset();

/// Monotonically increasing event count (modexp calls, cache hits, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void reset();
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, cache entries). `set` is last-writer-
/// wins; `add`/`sub` are atomic deltas.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n = 1) {
    if (enabled()) value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void reset();
  std::atomic<std::int64_t> value_{0};
};

/// Latency/size distribution with log₂ buckets: an observation v lands in
/// bucket bit_width(v), i.e. bucket k holds [2^(k-1), 2^k). 65 buckets
/// cover the full uint64 range; count and sum are kept exactly, so
/// `sum / 1e6` of a nanosecond histogram is the phase's total wall-clock
/// milliseconds (the property the phase-breakdown bench relies on).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) {
    if (!enabled()) return;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket index of a value: 0 for v == 0, otherwise bit_width(v).
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend void reset();
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// Registry lookups. Each returns a stable reference valid for the process
/// lifetime (instruments are never destroyed); the lookup takes a lock, so
/// call sites cache the reference in a function-local static:
///
///   static metrics::Counter& c = metrics::counter("layer.component.event");
///   c.add();
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// RAII nanosecond timer: records the scope's duration into `h` on
/// destruction. When metrics are disabled at construction the clock is
/// never read — the guard costs one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : hist_(enabled() ? &h : nullptr),
        start_(hist_ ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_->record(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every registered instrument.
struct Snapshot {
  struct HistogramData {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (bucket index, count) pairs for non-empty buckets only.
    std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
};

Snapshot snapshot();

/// Deterministic JSON of the current snapshot:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count": c, "sum_ns": s, "total_ms": m,
///                            "buckets": {"k": n, ...}}, ...}}
/// Names sort lexicographically; histogram "total_ms" is sum / 1e6 (the
/// per-phase wall-clock figure the bench emitters report).
std::string snapshot_json();

/// RAII enable/reset guard: enables metrics (resetting all instruments to
/// zero) for the scope and restores the previous enabled state on exit.
class ScopedMetrics {
 public:
  ScopedMetrics() : previous_(enabled()) {
    set_enabled(true);
    reset();
  }
  ~ScopedMetrics() { set_enabled(previous_); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  bool previous_;
};

}  // namespace slicer::metrics

// Error types shared across the Slicer library.
//
// Policy (per C++ Core Guidelines E.2/E.14): throw exceptions derived from
// std::runtime_error for violations that the caller cannot reasonably check
// in advance (malformed wire data, crypto parameter failures); use
// assertions for internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace slicer {

/// Base class of all exceptions thrown by the Slicer library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated serialized data.
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& what) : Error("decode: " + what) {}
};

/// Invalid cryptographic parameter or state (bad key size, zero modulus, ...).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error("crypto: " + what) {}
};

/// Violation of a protocol-level precondition (duplicate record id,
/// unknown token, payment mismatch, ...).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol: " + what) {}
};

}  // namespace slicer

#include "common/metrics.hpp"

#include <cstdlib>
#include <deque>
#include <mutex>
#include <sstream>

namespace slicer::metrics {

namespace {

/// The process-wide enable flag. Seeded from SLICER_METRICS exactly once;
/// afterwards set_enabled() flips it directly.
std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("SLICER_METRICS");
    return env != nullptr && env[0] != '\0';
  }();
  return flag;
}

/// Instrument storage. Deques never relocate elements, so a reference
/// handed out by counter()/gauge()/histogram() stays valid while new
/// instruments register. The registry leaks by design (function-local
/// static, never destroyed) so instruments outlive static-destruction
/// order — the same pattern as FaultInjector.
struct Registry {
  std::mutex mutex;
  std::map<std::string, Counter*, std::less<>> counters;
  std::map<std::string, Gauge*, std::less<>> gauges;
  std::map<std::string, Histogram*, std::less<>> histograms;
  std::deque<Counter> counter_storage;
  std::deque<Gauge> gauge_storage;
  std::deque<Histogram> histogram_storage;
};

Registry& registry() {
  static Registry* reg = new Registry();
  return *reg;
}

template <typename T, typename Map, typename Storage>
T& lookup(Map& map, Storage& storage, std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  storage.emplace_back();
  T& instrument = storage.back();
  map.emplace(std::string(name), &instrument);
  return instrument;
}

void json_escape(std::ostringstream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (Counter& c : reg.counter_storage)
    c.value_.store(0, std::memory_order_relaxed);
  for (Gauge& g : reg.gauge_storage)
    g.value_.store(0, std::memory_order_relaxed);
  for (Histogram& h : reg.histogram_storage) {
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
  }
}

Counter& counter(std::string_view name) {
  Registry& reg = registry();
  return lookup<Counter>(reg.counters, reg.counter_storage, name);
}

Gauge& gauge(std::string_view name) {
  Registry& reg = registry();
  return lookup<Gauge>(reg.gauges, reg.gauge_storage, name);
}

Histogram& histogram(std::string_view name) {
  Registry& reg = registry();
  return lookup<Histogram>(reg.histograms, reg.histogram_storage, name);
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  Snapshot snap;
  for (const auto& [name, c] : reg.counters) snap.counters[name] = c->value();
  for (const auto& [name, g] : reg.gauges) snap.gauges[name] = g->value();
  for (const auto& [name, h] : reg.histograms) {
    Snapshot::HistogramData data;
    data.count = h->count();
    data.sum = h->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n != 0) data.buckets.emplace_back(i, n);
    }
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

std::string snapshot_json() {
  const Snapshot snap = snapshot();
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    out << (first ? "" : ", ") << '"';
    json_escape(out, name);
    out << "\": " << v;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    out << (first ? "" : ", ") << '"';
    json_escape(out, name);
    out << "\": " << v;
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    out << (first ? "" : ", ") << '"';
    json_escape(out, name);
    out << "\": {\"count\": " << h.count << ", \"sum_ns\": " << h.sum
        << ", \"total_ms\": " << static_cast<double>(h.sum) / 1e6
        << ", \"buckets\": {";
    bool bfirst = true;
    for (const auto& [bucket, n] : h.buckets) {
      out << (bfirst ? "" : ", ") << '"' << bucket << "\": " << n;
      bfirst = false;
    }
    out << "}}";
    first = false;
  }
  out << "}}";
  return out.str();
}

}  // namespace slicer::metrics

#include "common/bytes.hpp"

#include <array>

#include "common/errors.hpp"

namespace slicer {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw DecodeError("hex string has odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw DecodeError("non-hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::uint64_t read_be64(BytesView data) {
  if (data.size() != 8) throw DecodeError("be64 needs exactly 8 bytes");
  std::uint64_t v = 0;
  for (std::uint8_t b : data) v = (v << 8) | b;
  return v;
}

Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes concat(BytesView a, BytesView b, BytesView c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

void append(Bytes& out, BytesView suffix) {
  out.insert(out.end(), suffix.begin(), suffix.end());
}

void append(Bytes& out, std::string_view suffix) {
  out.insert(out.end(), suffix.begin(), suffix.end());
}

Bytes xor_bytes(BytesView a, BytesView b) {
  if (a.size() != b.size()) throw CryptoError("xor_bytes: size mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace slicer

// Canonical binary serialization for protocol messages.
//
// The wire format is deliberately tiny: u8/u32/u64 big-endian integers and
// length-prefixed byte strings. Every message that crosses a party boundary
// (owner → cloud, cloud → blockchain, ...) is encoded with Writer and decoded
// with Reader so byte-exact round-trips are guaranteed — a requirement for
// the multiset hash and prime-representative recomputation on chain.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace slicer {

/// Appends typed values to an internal byte buffer.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void bytes(BytesView data);
  /// Length-prefixed (u32) ASCII string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix. Use only for fixed-width fields.
  void raw(BytesView data);

  /// Returns the accumulated buffer (move-friendly).
  Bytes take() && { return std::move(buf_); }
  const Bytes& view() const { return buf_; }

 private:
  Bytes buf_;
};

/// Reads typed values from a byte buffer; throws DecodeError on underrun.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes();
  std::string str();
  /// Reads exactly `n` raw bytes.
  Bytes raw(std::size_t n);

  /// Reads a u32 element count and validates it against the remaining
  /// payload: every element must occupy at least `min_element_bytes`, so a
  /// forged count cannot exceed remaining()/min_element_bytes. Use this for
  /// every length-prefixed collection — it turns "attacker picks the
  /// reserve() size" into DecodeError before any allocation happens.
  std::uint32_t count(std::size_t min_element_bytes);

  bool empty() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws DecodeError unless the whole buffer was consumed.
  void expect_end() const;

 private:
  BytesView need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace slicer

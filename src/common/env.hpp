// Shared parsing for SLICER_* environment knobs.
//
// Every integer knob (SLICER_THREADS, SLICER_SHARDS, SLICER_PROOF_CACHE,
// SLICER_PORT, SLICER_NET_THREADS, ...) goes through size_knob so the
// behaviour is uniform everywhere:
//   * unset or empty        → the documented default, silently;
//   * a well-formed integer → clamped into [min_value, max_value] (a clamp
//     is diagnosed once per knob on stderr — a typo like SLICER_SHARDS=2560
//     should not silently behave like 256);
//   * anything else         → the default, with a once-per-knob stderr
//     diagnostic naming the knob and the rejected value.
// Diagnostics go to stderr (never stdout — bench JSON is piped from stdout)
// and are rate-limited to one line per knob per process so a knob read on a
// hot path cannot spam the log.
#pragma once

#include <cstddef>

namespace slicer::env {

/// Parses the integer environment knob `name` as described above. The whole
/// value must be a base-10 unsigned integer; trailing garbage ("4x", "1e3")
/// is malformed, not truncated.
std::size_t size_knob(const char* name, std::size_t fallback,
                      std::size_t min_value, std::size_t max_value);

/// True when the flag knob `name` is set to anything non-empty except "0".
bool flag_knob(const char* name);

}  // namespace slicer::env

// Byte-string helpers used throughout the library.
//
// All protocol messages, keys, PRF inputs/outputs and ciphertexts are plain
// byte vectors; this header provides the small set of operations we need on
// them (hex codecs, big-endian integer packing, concatenation, XOR).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace slicer {

/// Canonical byte-string type for keys, ciphertexts and wire data.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over a byte string.
using BytesView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decodes a hex string (upper or lower case). Throws DecodeError on
/// odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Packs `v` as an 8-byte big-endian string.
Bytes be64(std::uint64_t v);

/// Unpacks an 8-byte big-endian string. Throws DecodeError if
/// `data.size() != 8`.
std::uint64_t read_be64(BytesView data);

/// Returns `a || b`.
Bytes concat(BytesView a, BytesView b);

/// Returns `a || b || c`.
Bytes concat(BytesView a, BytesView b, BytesView c);

/// Appends `suffix` to `out`.
void append(Bytes& out, BytesView suffix);

/// Appends the bytes of an ASCII string to `out`.
void append(Bytes& out, std::string_view suffix);

/// XORs `b` into `a` element-wise. Throws CryptoError when sizes differ.
Bytes xor_bytes(BytesView a, BytesView b);

/// Converts an ASCII string to bytes.
Bytes str_bytes(std::string_view s);

/// Constant-time equality check (length leak only).
bool ct_equal(BytesView a, BytesView b);

}  // namespace slicer

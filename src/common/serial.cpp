#include "common/serial.hpp"

#include "common/errors.hpp"

namespace slicer {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::bytes(BytesView data) {
  if (data.size() > 0xffffffffu) throw DecodeError("byte string too long");
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Writer::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

BytesView Reader::need(std::size_t n) {
  if (remaining() < n) throw DecodeError("buffer underrun");
  BytesView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t Reader::u8() { return need(1)[0]; }

std::uint32_t Reader::u32() {
  BytesView b = need(4);
  std::uint32_t v = 0;
  for (std::uint8_t x : b) v = (v << 8) | x;
  return v;
}

std::uint64_t Reader::u64() {
  BytesView b = need(8);
  std::uint64_t v = 0;
  for (std::uint8_t x : b) v = (v << 8) | x;
  return v;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  BytesView b = need(n);
  return Bytes(b.begin(), b.end());
}

std::string Reader::str() {
  const Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  BytesView b = need(n);
  return Bytes(b.begin(), b.end());
}

std::uint32_t Reader::count(std::size_t min_element_bytes) {
  const std::uint32_t n = u32();
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (n > remaining() / min_element_bytes)
    throw DecodeError("element count exceeds payload");
  return n;
}

void Reader::expect_end() const {
  if (!empty()) throw DecodeError("trailing bytes after message");
}

}  // namespace slicer

#include "common/trace.hpp"

#include <cstdlib>
#include <mutex>

namespace slicer::trace {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("SLICER_TRACE");
    return env != nullptr && env[0] != '\0';
  }();
  return flag;
}

/// Innermost live span on this thread — the parent link for new spans.
thread_local std::uint64_t current_span_id = 0;

std::atomic<std::uint64_t> next_id{1};

/// All spans share one clock origin so start_ns values are comparable
/// across threads.
std::chrono::steady_clock::time_point clock_origin() {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

/// The ring-buffer sink. Mutex-protected: spans close at phase granularity
/// (microseconds to milliseconds), so sink contention is never on a hot
/// path. Leaked like the metrics registry to dodge static-destruction
/// order.
struct Sink {
  std::mutex mutex;
  std::vector<SpanRecord> ring;  // capacity kTraceCapacity, write_pos wraps
  std::size_t write_pos = 0;
  std::uint64_t total_pushed = 0;
  std::uint64_t dropped = 0;

  void push(SpanRecord record) {
    std::lock_guard<std::mutex> lock(mutex);
    if (ring.size() < kTraceCapacity) {
      ring.push_back(std::move(record));
    } else {
      dropped += 1;
      ring[write_pos] = std::move(record);
      write_pos = (write_pos + 1) % kTraceCapacity;
    }
    total_pushed += 1;
  }
};

Sink& sink() {
  static Sink* s = new Sink();
  return *s;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = current_span_id;
  current_span_id = id_;
  name_ = name;
  // Pin the shared origin no later than the first span's start, so
  // start_ns offsets never go negative (the origin is created on first
  // use; without this it would be created by the first *destructor*).
  clock_origin();
  start_ = std::chrono::steady_clock::now();
}

std::uint64_t Span::elapsed_ns() const {
  if (id_ == 0) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

Span::~Span() {
  if (id_ == 0) return;
  const auto end = std::chrono::steady_clock::now();
  current_span_id = parent_id_;
  SpanRecord record;
  record.id = id_;
  record.parent_id = parent_id_;
  record.name = std::move(name_);
  const auto start_offset =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                           clock_origin())
          .count();
  record.start_ns =
      start_offset < 0 ? 0 : static_cast<std::uint64_t>(start_offset);
  record.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  sink().push(std::move(record));
}

std::vector<SpanRecord> drain(std::uint64_t* dropped) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  // Unwrap the ring so the oldest retained span comes first.
  std::vector<SpanRecord> out;
  out.reserve(s.ring.size());
  for (std::size_t i = 0; i < s.ring.size(); ++i)
    out.push_back(std::move(s.ring[(s.write_pos + i) % s.ring.size()]));
  s.ring.clear();
  s.write_pos = 0;
  if (dropped != nullptr) *dropped = s.dropped;
  s.dropped = 0;
  return out;
}

std::string drain_json() {
  std::uint64_t dropped = 0;
  const std::vector<SpanRecord> spans = drain(&dropped);
  std::string out = "{\"dropped\": " + std::to_string(dropped) +
                    ", \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i != 0) out += ", ";
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent_id) + ", \"name\": \"";
    for (const char c : s.name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace slicer::trace

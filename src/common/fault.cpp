#include "common/fault.hpp"

#include <charconv>
#include <cstdlib>

namespace slicer {

namespace {

/// SplitMix64 — the standard 64-bit finalizer; enough mixing to turn
/// (seed, site hash, hit index) into an unbiased coin.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t parse_u64(std::string_view s, std::string_view what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw DecodeError("fault plan: bad " + std::string(what) + " '" +
                      std::string(s) + "'");
  return v;
}

double parse_prob(std::string_view s) {
  // std::from_chars<double> is still patchy across stdlibs; strtod on a
  // bounded copy is fine for a config string.
  const std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || v < 0.0 || v > 1.0)
    throw DecodeError("fault plan: bad probability '" + copy + "'");
  return v;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view item = spec.substr(pos, end - pos);
    pos = end + 1;
    // Tolerate whitespace around items — this is an env-var grammar.
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t'))
      item.remove_prefix(1);
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t'))
      item.remove_suffix(1);
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      throw DecodeError("fault plan: missing '=' in '" + std::string(item) +
                        "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);

    if (key == "seed") {
      plan.seed = parse_u64(value, "seed");
      continue;
    }

    FaultSpec fault;
    if (value == "always") {
      fault.trigger = FaultSpec::Trigger::kAlways;
    } else if (value.starts_with("nth:")) {
      fault.trigger = FaultSpec::Trigger::kNth;
      fault.n = parse_u64(value.substr(4), "nth count");
      if (fault.n == 0) throw DecodeError("fault plan: nth count must be >= 1");
    } else if (value.starts_with("every:")) {
      fault.trigger = FaultSpec::Trigger::kEvery;
      fault.n = parse_u64(value.substr(6), "every period");
      if (fault.n == 0)
        throw DecodeError("fault plan: every period must be >= 1");
    } else if (value.starts_with("p:")) {
      fault.trigger = FaultSpec::Trigger::kProbability;
      fault.p = parse_prob(value.substr(2));
    } else {
      throw DecodeError("fault plan: unknown trigger '" + std::string(value) +
                        "'");
    }
    plan.sites[std::string(key)] = fault;
  }
  return plan;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("SLICER_FAULTS")) {
    if (env[0] != '\0') configure(FaultPlan::parse(env));
  }
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  seed_ = plan.seed;
  for (auto& [name, spec] : plan.sites) {
    SiteState state;
    state.spec = spec;
    state.armed = true;
    sites_.emplace(name, state);
  }
  armed_.store(!plan.sites.empty(), std::memory_order_relaxed);
}

void FaultInjector::clear() { configure(FaultPlan{}); }

bool FaultInjector::should_fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end())
    it = sites_.emplace(std::string(site), SiteState{}).first;
  SiteState& s = it->second;
  const std::uint64_t hit = ++s.hits;
  if (!s.armed) return false;

  bool fire = false;
  switch (s.spec.trigger) {
    case FaultSpec::Trigger::kNth:
      fire = hit == s.spec.n;
      break;
    case FaultSpec::Trigger::kEvery:
      fire = hit % s.spec.n == 0;
      break;
    case FaultSpec::Trigger::kProbability: {
      const std::uint64_t h =
          splitmix64(seed_ ^ splitmix64(fnv1a(site) ^ splitmix64(hit)));
      // Top 53 bits → uniform double in [0, 1).
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53;
      fire = u < s.spec.p;
      break;
    }
    case FaultSpec::Trigger::kAlways:
      fire = true;
      break;
  }
  if (fire) ++s.fired;
  return fire;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

FaultPlan FaultInjector::current_plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultPlan plan;
  plan.seed = seed_;
  for (const auto& [name, state] : sites_)
    if (state.armed) plan.sites[name] = state.spec;
  return plan;
}

ScopedFaultPlan::ScopedFaultPlan(FaultPlan plan) {
  FaultInjector& inj = FaultInjector::instance();
  // Counters are not preserved across a scope — each scope starts fresh.
  previous_ = inj.current_plan();
  inj.configure(std::move(plan));
}

ScopedFaultPlan::~ScopedFaultPlan() {
  FaultInjector::instance().configure(std::move(previous_));
}

}  // namespace slicer

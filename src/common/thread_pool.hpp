// Work-stealing-free thread pool behind the parallel hot paths.
//
// One process-wide pool (sized by SLICER_THREADS, default
// std::thread::hardware_concurrency()) backs `parallel_for` /
// `parallel_map` / `invoke2`. The design is deliberately simple — a single
// FIFO of helper closures plus an atomic index counter per job — because
// every parallel region in Slicer is an index-addressed fan-out over
// expensive, independent big-integer operations:
//
//   * the caller participates: it claims index chunks exactly like a
//     worker, so a job always makes progress even when every worker is
//     busy (this is what makes nested parallel_for calls — e.g. the
//     product-tree inside a forked all_witnesses half — deadlock-free);
//   * results are written to per-index slots, so scheduling order never
//     changes the output: a run with N threads is bit-identical to a run
//     with SLICER_THREADS=1, which executes everything inline on the
//     calling thread with no pool interaction at all.
//
// Thread-safety contract: ThreadPool methods are safe to call from any
// thread, including from inside a running parallel region.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slicer {

/// Fixed-size thread pool with caller participation.
class ThreadPool {
 public:
  /// `threads` is the total parallelism (caller lane included):
  /// threads == 1 spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool: sized by the SLICER_THREADS environment
  /// variable (default hardware_concurrency, minimum 1), unless a
  /// ScopedPool override is active on this thread's process.
  static ThreadPool& instance();

  /// Total parallel lanes (workers + the calling thread).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// True when this call would run inline on the calling thread — either
  /// the pool has a single lane or a ScopedSerial guard is active.
  bool is_serial() const;

  /// Runs body(i) for every i in [0, n), blocking until all complete.
  /// Indices are claimed in chunks of `grain` from a shared counter; the
  /// caller participates. The first exception thrown by any body is
  /// rethrown here (remaining indices may be skipped). Serial pools (or an
  /// active ScopedSerial) execute `body(0..n-1)` in order on this thread.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// parallel_for that materializes results: out[i] = fn(i).
  /// T must be default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 1) {
    std::vector<T> out(n);
    parallel_for(
        n, [&](std::size_t i) { out[i] = fn(i); }, grain);
    return out;
  }

  /// Fork-join of two thunks (the all_witnesses recursion splitter).
  void invoke2(const std::function<void()>& a, const std::function<void()>& b);

  /// Enqueues one standalone fire-and-forget closure (the network server's
  /// request-dispatch primitive). FIFO with parallel_for helpers on the
  /// same queue. A pool with no workers (SLICER_THREADS=1) executes the
  /// task inline on the calling thread before returning — submit() then
  /// degenerates to a synchronous call, which keeps the single-thread
  /// configuration exactly as deterministic as it is for parallel_for.
  /// The destructor drains the queue, so every submitted task runs.
  void submit(std::function<void()> task);

  /// RAII guard forcing every parallel_for issued from the current thread
  /// (and the regions nested inside it) to run inline — the exact
  /// SLICER_THREADS=1 code path. Benchmarks use it to time the serial
  /// baseline inside a parallel process.
  class ScopedSerial {
   public:
    ScopedSerial();
    ~ScopedSerial();
    ScopedSerial(const ScopedSerial&) = delete;
    ScopedSerial& operator=(const ScopedSerial&) = delete;
  };

  /// RAII guard replacing ThreadPool::instance() with a pool of the given
  /// size (defined after the class — it owns a ThreadPool by value). For
  /// tests and benchmarks only: installation is not synchronized, so
  /// establish the override before spawning any work.
  class ScopedPool;

 private:
  void worker_loop();
  void enqueue_helpers(std::size_t count, const std::function<void()>& helper);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

class ThreadPool::ScopedPool {
 public:
  explicit ScopedPool(std::size_t threads);
  ~ScopedPool();
  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* previous_;
};

}  // namespace slicer

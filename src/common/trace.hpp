// Scoped trace spans with parent links and a ring-buffer sink.
//
// A Span is an RAII guard around one protocol phase ("client.query",
// "cloud.prove", ...). Spans opened while another span is live on the same
// thread record it as their parent, so a drained trace reconstructs the
// call tree of a query: client.query → client.tokens / cloud.search →
// cloud.fetch / cloud.prove → verify.token.
//
// The sink is a fixed-capacity ring buffer: the newest kTraceCapacity
// completed spans are kept, older ones are overwritten (dropped spans are
// counted). Like common/metrics, tracing is off by default — a disabled
// Span construction is one relaxed atomic load — and is switched on by the
// SLICER_TRACE environment variable or trace::set_enabled().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slicer::trace {

/// Ring-buffer capacity: the newest completed spans kept for drain().
inline constexpr std::size_t kTraceCapacity = 4096;

/// True when span recording is on — the only check on the hot path.
bool enabled();
void set_enabled(bool on);

/// One completed span as stored in the ring buffer.
struct SpanRecord {
  std::uint64_t id = 0;         ///< unique per process run, 1-based
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady-clock offset from process start
  std::uint64_t duration_ns = 0;
};

/// RAII scoped span. Cheap no-op when tracing is disabled at construction;
/// otherwise assigns an id, links to the innermost live span on this
/// thread, and pushes a SpanRecord into the ring buffer on destruction.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Nanoseconds since this span opened (0 when tracing is disabled) —
  /// lets instrumented code reuse the span's clock reads for per-item
  /// latency reporting instead of timing twice.
  std::uint64_t elapsed_ns() const;

  /// This span's id (0 when tracing is disabled).
  std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_ = 0;  // 0 = disabled, records nothing
  std::uint64_t parent_id_ = 0;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

/// Copies out the buffered spans (oldest kept first) and clears the
/// buffer. `dropped` (optional) receives the number of spans overwritten
/// since the last drain.
std::vector<SpanRecord> drain(std::uint64_t* dropped = nullptr);

/// Drains the buffer into deterministic JSON:
///   {"dropped": n, "spans": [{"id": i, "parent": p, "name": "...",
///                             "start_ns": s, "duration_ns": d}, ...]}
std::string drain_json();

/// RAII enable guard: turns tracing on (draining stale spans) for the
/// scope, restores the previous state on exit.
class ScopedTrace {
 public:
  ScopedTrace() : previous_(enabled()) {
    set_enabled(true);
    drain();
  }
  ~ScopedTrace() { set_enabled(previous_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool previous_;
};

}  // namespace slicer::trace

// Deterministic fault-injection registry.
//
// Any layer may declare a *fault site* — a named point where a failure can
// be injected — by calling `fault_point("layer.component.event")`. With no
// plan armed the call is one relaxed atomic load, so production and
// benchmark binaries pay nothing. A plan arms specific sites with a
// trigger:
//
//   nth:<k>    fire exactly once, on the k-th hit of the site (1-based)
//   every:<k>  fire on every k-th hit
//   p:<prob>   fire each hit with probability <prob>, decided by a
//              SplitMix64 hash of (seed, site, hit index) — deterministic
//              and independent of thread interleaving
//   always     fire on every hit
//
// Plans come from the SLICER_FAULTS environment variable
// ("chain.mempool.drop=p:0.3;chain.seal.validator_down=nth:2;seed=7") or
// from the ScopedFaultPlan API (tests, the robustness soak). Per-site hit
// and fire counters are kept for assertions and the soak report.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/errors.hpp"

namespace slicer {

/// Thrown by fault sites that inject a failure as an exception (the
/// `fault_point_throw` helper). Catchable like every other slicer::Error.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& site)
      : Error("fault injected at " + site) {}
};

/// Trigger of one armed fault site.
struct FaultSpec {
  enum class Trigger { kNth, kEvery, kProbability, kAlways };
  Trigger trigger = Trigger::kAlways;
  std::uint64_t n = 1;  // kNth: the firing hit (1-based); kEvery: the period
  double p = 0.0;       // kProbability: per-hit firing probability
};

/// A named set of armed sites plus the seed for probabilistic triggers.
struct FaultPlan {
  std::map<std::string, FaultSpec, std::less<>> sites;
  std::uint64_t seed = 0;

  /// Parses the SLICER_FAULTS grammar described above. Throws DecodeError
  /// on malformed specs (unknown trigger, bad number, missing '=').
  static FaultPlan parse(std::string_view spec);
};

/// Process-wide fault registry. Disarmed unless a plan is installed.
class FaultInjector {
 public:
  /// The singleton; arms itself from SLICER_FAULTS on first use.
  static FaultInjector& instance();

  /// Installs `plan` (resets all counters). An empty plan disarms.
  void configure(FaultPlan plan);

  /// Disarms and resets all counters.
  void clear();

  /// True when any site is armed — the only check on the hot path.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Records a hit of `site` and evaluates its trigger. Unarmed sites
  /// still count hits (so tests can assert a site was reached) but never
  /// fire.
  bool should_fire(std::string_view site);

  /// Counters for assertions and the soak report.
  std::uint64_t hits(std::string_view site) const;
  std::uint64_t fired(std::string_view site) const;

  /// The currently armed plan (empty when disarmed) — what ScopedFaultPlan
  /// restores on scope exit.
  FaultPlan current_plan() const;

 private:
  FaultInjector();

  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// Declares a fault site. Returns true when an armed trigger fires.
inline bool fault_point(std::string_view site) {
  FaultInjector& inj = FaultInjector::instance();
  if (!inj.armed()) return false;
  return inj.should_fire(site);
}

/// Fault site that surfaces as a FaultError when it fires — the form used
/// inside parallel Build/Search regions, where the thread pool must carry
/// the exception back to the caller.
inline void fault_point_throw(std::string_view site) {
  if (fault_point(site)) throw FaultError(std::string(site));
}

/// RAII plan installation: arms `plan` for the scope, restores the
/// previously armed plan (with fresh counters) on exit. Tests and the
/// robustness soak use this so fault state never leaks across cases.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan);
  explicit ScopedFaultPlan(std::string_view spec)
      : ScopedFaultPlan(FaultPlan::parse(spec)) {}
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan previous_;
};

}  // namespace slicer

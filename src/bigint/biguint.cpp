#include "bigint/biguint.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "bigint/montgomery.hpp"
#include "common/errors.hpp"

namespace slicer::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {
// Limb count above which multiplication switches to Karatsuba.
constexpr std::size_t kKaratsubaThreshold = 32;
}  // namespace

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint::BigUint(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

BigUint BigUint::from_limbs(std::vector<u64> limbs) {
  BigUint out;
  out.limbs_ = std::move(limbs);
  out.normalize();
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  BigUint out;
  for (char c : hex) {
    int nib;
    if (c >= '0' && c <= '9') nib = c - '0';
    else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
    else throw DecodeError("BigUint::from_hex: non-hex character");
    out = out << 4;
    out.add_u64(static_cast<u64>(nib));
  }
  return out;
}

BigUint BigUint::from_bytes_be(BytesView data) {
  BigUint out;
  const std::size_t n = data.size();
  out.limbs_.assign((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t byte_from_ls = n - 1 - i;  // position from least significant
    out.limbs_[byte_from_ls / 8] |= static_cast<u64>(data[i])
                                    << (8 * (byte_from_ls % 8));
  }
  out.normalize();
  return out;
}

Bytes BigUint::to_bytes_be() const {
  const std::size_t bits = bit_length();
  const std::size_t n = (bits + 7) / 8;
  return to_bytes_be(n);
}

Bytes BigUint::to_bytes_be(std::size_t width) const {
  const std::size_t bits = bit_length();
  if ((bits + 7) / 8 > width)
    throw CryptoError("BigUint::to_bytes_be: value wider than requested");
  Bytes out(width, 0);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t byte_from_ls = width - 1 - i;
    const std::size_t limb = byte_from_ls / 8;
    if (limb < limbs_.size())
      out[i] = static_cast<std::uint8_t>(limbs_[limb] >> (8 * (byte_from_ls % 8)));
  }
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  bool leading = true;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      const int nib = static_cast<int>((limbs_[i] >> shift) & 0xf);
      if (leading && nib == 0) continue;
      leading = false;
      out.push_back(kDigits[nib]);
    }
  }
  return out;
}

std::string BigUint::to_dec() const {
  if (is_zero()) return "0";
  BigUint tmp = *this;
  std::string out;
  while (!tmp.is_zero()) {
    const u64 r = tmp.divmod_u64(10);
    out.push_back(static_cast<char>('0' + r));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 +
         (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::strong_ordering BigUint::operator<=>(const BigUint& rhs) const {
  if (limbs_.size() != rhs.limbs_.size())
    return limbs_.size() <=> rhs.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(limbs_[i]) + r + carry;
    limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
    if (carry == 0 && i >= rhs.limbs_.size()) break;
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigUint BigUint::operator+(const BigUint& rhs) const {
  BigUint out = *this;
  out += rhs;
  return out;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  if (*this < rhs) throw CryptoError("BigUint subtraction underflow");
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 r = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sub = static_cast<u128>(limbs_[i]) - r - borrow;
    limbs_[i] = static_cast<u64>(sub);
    borrow = (sub >> 64) ? 1 : 0;  // wrapped => borrow
    if (borrow == 0 && i >= rhs.limbs_.size()) break;
  }
  normalize();
  return *this;
}

BigUint BigUint::operator-(const BigUint& rhs) const {
  BigUint out = *this;
  out -= rhs;
  return out;
}

BigUint BigUint::slice_limbs(std::size_t from, std::size_t count) const {
  BigUint out;
  if (from >= limbs_.size()) return out;
  const std::size_t end = std::min(from + count, limbs_.size());
  out.limbs_.assign(limbs_.begin() + static_cast<long>(from),
                    limbs_.begin() + static_cast<long>(end));
  out.normalize();
  return out;
}

BigUint BigUint::mul_schoolbook(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    const u64 ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(ai) * b.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + b.limbs_.size()] += carry;
  }
  out.normalize();
  return out;
}

BigUint BigUint::mul_karatsuba(const BigUint& a, const BigUint& b) {
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  if (n < kKaratsubaThreshold) return mul_schoolbook(a, b);
  const std::size_t half = n / 2;

  const BigUint a0 = a.slice_limbs(0, half);
  const BigUint a1 = a.slice_limbs(half, n - half);
  const BigUint b0 = b.slice_limbs(0, half);
  const BigUint b1 = b.slice_limbs(half, n - half);

  const BigUint z0 = mul_karatsuba(a0, b0);
  const BigUint z2 = mul_karatsuba(a1, b1);
  const BigUint z1 = mul_karatsuba(a0 + a1, b0 + b1) - z0 - z2;

  BigUint out = z0;
  out += z1 << (64 * half);
  out += z2 << (128 * half);
  return out;
}

BigUint BigUint::operator*(const BigUint& rhs) const {
  if (std::min(limbs_.size(), rhs.limbs_.size()) >= kKaratsubaThreshold)
    return mul_karatsuba(*this, rhs);
  return mul_schoolbook(*this, rhs);
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUint& BigUint::mul_u64(u64 m) {
  if (m == 0 || is_zero()) {
    limbs_.clear();
    return *this;
  }
  u64 carry = 0;
  for (auto& limb : limbs_) {
    const u128 cur = static_cast<u128>(limb) * m + carry;
    limb = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigUint& BigUint::add_u64(u64 a) {
  u64 carry = a;
  for (auto& limb : limbs_) {
    if (carry == 0) break;
    const u128 sum = static_cast<u128>(limb) + carry;
    limb = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

u64 BigUint::divmod_u64(u64 d) {
  if (d == 0) throw CryptoError("BigUint division by zero");
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const u128 cur = (rem << 64) | limbs_[i];
    limbs_[i] = static_cast<u64>(cur / d);
    rem = cur % d;
  }
  normalize();
  return static_cast<u64>(rem);
}

BigUint BigUint::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator>>(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigUint{};
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.normalize();
  return out;
}

BigUint::DivMod BigUint::divmod(const BigUint& a, const BigUint& b) {
  if (b.is_zero()) throw CryptoError("BigUint division by zero");
  if (a < b) return DivMod{BigUint{}, a};
  if (b.limbs_.size() == 1) {
    BigUint q = a;
    const u64 r = q.divmod_u64(b.limbs_[0]);
    return DivMod{std::move(q), BigUint(r)};
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set, then estimate quotient digits limb by limb.
  const std::size_t shift =
      static_cast<std::size_t>(__builtin_clzll(b.limbs_.back()));
  const BigUint u = a << shift;
  const BigUint v = b << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<u64> un(u.limbs_);
  un.push_back(0);  // extra high limb for the algorithm
  const std::vector<u64>& vn = v.limbs_;

  std::vector<u64> q(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat from the top two limbs of the current remainder.
    const u128 numerator = (static_cast<u128>(un[j + n]) << 64) | un[j + n - 1];
    u128 q_hat = numerator / vn[n - 1];
    u128 r_hat = numerator % vn[n - 1];

    while (q_hat > std::numeric_limits<u64>::max() ||
           (q_hat * vn[n - 2]) >
               ((r_hat << 64) | un[j + n - 2])) {
      --q_hat;
      r_hat += vn[n - 1];
      if (r_hat > std::numeric_limits<u64>::max()) break;
    }

    // Multiply-and-subtract: un[j..j+n] -= q_hat * vn.
    u128 borrow = 0;
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const u128 prod = q_hat * vn[i] + carry;
      carry = prod >> 64;
      const u128 sub = static_cast<u128>(un[i + j]) -
                       static_cast<u64>(prod) - borrow;
      un[i + j] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    const u128 sub = static_cast<u128>(un[j + n]) - carry - borrow;
    un[j + n] = static_cast<u64>(sub);

    q[j] = static_cast<u64>(q_hat);
    if (sub >> 64) {
      // q_hat was one too large: add the divisor back.
      --q[j];
      u128 add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const u128 sum = static_cast<u128>(un[i + j]) + vn[i] + add_carry;
        un[i + j] = static_cast<u64>(sum);
        add_carry = sum >> 64;
      }
      un[j + n] = static_cast<u64>(static_cast<u128>(un[j + n]) + add_carry);
    }
  }

  un.resize(n);
  const BigUint remainder = from_limbs(std::move(un)) >> shift;
  return DivMod{from_limbs(std::move(q)), remainder};
}

BigUint BigUint::operator/(const BigUint& rhs) const {
  return divmod(*this, rhs).quotient;
}

BigUint BigUint::operator%(const BigUint& rhs) const {
  return divmod(*this, rhs).remainder;
}

BigUint BigUint::add_mod(const BigUint& a, const BigUint& b, const BigUint& m) {
  BigUint sum = a + b;
  if (sum >= m) sum -= m;
  return sum;
}

BigUint BigUint::sub_mod(const BigUint& a, const BigUint& b, const BigUint& m) {
  if (a >= b) return a - b;
  return m - (b - a);
}

BigUint BigUint::mul_mod(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a * b) % m;
}

namespace {

/// Low `bits` bits of x — x mod 2^bits by limb masking, no division.
BigUint low_bits(const BigUint& x, std::size_t bits) {
  const auto& limbs = x.limbs();
  const std::size_t whole = bits / 64;
  const std::size_t rem = bits % 64;
  const std::size_t count =
      std::min(limbs.size(), whole + (rem != 0 ? 1 : 0));
  std::vector<std::uint64_t> out(limbs.begin(),
                                 limbs.begin() + static_cast<long>(count));
  if (rem != 0 && count == whole + 1)
    out[whole] &= (std::uint64_t{1} << rem) - 1;
  return BigUint::from_limbs(std::move(out));
}

/// a^e mod 2^bits: square-and-multiply where every product is clipped to
/// `bits`, so the whole exponentiation performs zero remainder divisions.
BigUint pow_mod_pow2(const BigUint& a, const BigUint& e, std::size_t bits) {
  BigUint base = low_bits(a, bits);
  BigUint result(1);
  result = low_bits(result, bits);  // bits == 0 would mean modulus 1
  const std::size_t ebits = e.bit_length();
  for (std::size_t i = 0; i < ebits; ++i) {
    if (e.bit(i)) result = low_bits(result * base, bits);
    base = low_bits(base * base, bits);
  }
  return result;
}

}  // namespace

BigUint BigUint::pow_mod(const BigUint& a, const BigUint& e, const BigUint& m) {
  if (m.is_zero()) throw CryptoError("pow_mod: zero modulus");
  if (m.is_one()) return BigUint{};
  if (m.is_odd()) {
    const Montgomery mont(m);
    return mont.pow(a % m, e);
  }
  // Even modulus: split m = 2^s·q with q odd and recombine by CRT. The odd
  // part still runs through Montgomery and the 2-power part truncates, so
  // even-modulus callers no longer pay a full division per exponent bit.
  std::size_t s = 0;
  BigUint q = m;
  while (!q.is_odd()) {
    q = q >> 1;
    ++s;
  }
  const BigUint r1 = pow_mod_pow2(a, e, s);
  if (q.is_one()) return r1;  // m is a pure power of two
  const Montgomery mont(q);
  const BigUint r2 = mont.pow(a % q, e);
  // x ≡ r2 (mod q) and x ≡ r1 (mod 2^s):
  //   x = r2 + q·t,  t = (r1 − r2)·q⁻¹ mod 2^s.
  const BigUint pow2 = BigUint(1) << s;
  const BigUint diff = sub_mod(low_bits(r1, s), low_bits(r2, s), pow2);
  const BigUint t = low_bits(diff * mod_inverse(low_bits(q, s), pow2), s);
  return r2 + q * t;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint::ExtGcd BigUint::ext_gcd(const BigUint& a, const BigUint& b) {
  // Iterative extended Euclid with explicit sign tracking (values are
  // unsigned; coefficients alternate sign along the remainder sequence).
  BigUint r0 = a, r1 = b;
  BigUint x0(1), x1{};
  bool x0_neg = false, x1_neg = false;
  BigUint y0{}, y1(1);
  bool y0_neg = false, y1_neg = false;

  auto step = [](const BigUint& q, BigUint& c0, bool& c0_neg, BigUint& c1,
                 bool& c1_neg) {
    // (c0, c1) <- (c1, c0 - q*c1)
    BigUint qc1 = q * c1;
    BigUint c2;
    bool c2_neg;
    if (c0_neg == c1_neg) {
      if (c0 >= qc1) {
        c2 = c0 - qc1;
        c2_neg = c0_neg;
      } else {
        c2 = qc1 - c0;
        c2_neg = !c0_neg;
      }
    } else {
      c2 = c0 + qc1;
      c2_neg = c0_neg;
    }
    c0 = std::move(c1);
    c0_neg = c1_neg;
    c1 = std::move(c2);
    c1_neg = c2_neg;
  };

  while (!r1.is_zero()) {
    const DivMod qr = divmod(r0, r1);
    r0 = std::move(r1);
    r1 = qr.remainder;
    step(qr.quotient, x0, x0_neg, x1, x1_neg);
    step(qr.quotient, y0, y0_neg, y1, y1_neg);
  }

  ExtGcd out;
  out.gcd = std::move(r0);
  out.x = std::move(x0);
  out.x_negative = x0_neg && !out.x.is_zero();
  out.y = std::move(y0);
  out.y_negative = y0_neg && !out.y.is_zero();
  return out;
}

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
  if (m.is_zero()) throw CryptoError("mod_inverse: zero modulus");
  // Extended Euclid with coefficients tracked as (value, sign).
  BigUint r0 = m, r1 = a % m;
  BigUint t0{}, t1(1);
  bool t0_neg = false, t1_neg = false;

  while (!r1.is_zero()) {
    const DivMod qr = divmod(r0, r1);
    // t2 = t0 - q * t1 with explicit sign handling.
    BigUint q_t1 = qr.quotient * t1;
    BigUint t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // Same sign: subtraction may flip.
      if (t0 >= q_t1) {
        t2 = t0 - q_t1;
        t2_neg = t0_neg;
      } else {
        t2 = q_t1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + q_t1;
      t2_neg = t0_neg;
    }
    r0 = std::move(r1);
    r1 = qr.remainder;
    t0 = std::move(t1);
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }

  if (!r0.is_one()) throw CryptoError("mod_inverse: not invertible");
  if (t0_neg) return m - (t0 % m);
  return t0 % m;
}

}  // namespace slicer::bigint

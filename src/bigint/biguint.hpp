// Arbitrary-precision unsigned integers on 64-bit limbs.
//
// This is the arithmetic substrate for the RSA accumulator, the RSA trapdoor
// permutation and the MSet-Mu-Hash field. The representation is a normalized
// little-endian limb vector (no trailing zero limbs; zero is the empty
// vector), so default-constructed values are valid zeros and moves are cheap.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace slicer::bigint {

/// Unsigned big integer.
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a machine word.
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal convenience

  /// Parses an unprefixed hex string (empty string = 0). Throws DecodeError
  /// on non-hex characters.
  static BigUint from_hex(std::string_view hex);

  /// Parses big-endian bytes (leading zeros allowed).
  static BigUint from_bytes_be(BytesView data);

  /// Minimal big-endian encoding ("0" encodes to an empty vector).
  Bytes to_bytes_be() const;

  /// Fixed-width big-endian encoding, left-padded with zeros. Throws
  /// CryptoError if the value does not fit.
  Bytes to_bytes_be(std::size_t width) const;

  /// Lowercase hex, no leading zeros ("0" for zero).
  std::string to_hex() const;

  /// Decimal string.
  std::string to_dec() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;

  /// Value of bit `i` (false beyond bit_length()).
  bool bit(std::size_t i) const;

  /// Low 64 bits.
  std::uint64_t low_u64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// Number of limbs in the normalized representation.
  std::size_t limb_count() const { return limbs_.size(); }

  std::strong_ordering operator<=>(const BigUint& rhs) const;
  bool operator==(const BigUint& rhs) const = default;

  BigUint operator+(const BigUint& rhs) const;
  /// Subtraction; throws CryptoError on underflow (values are unsigned).
  BigUint operator-(const BigUint& rhs) const;
  BigUint operator*(const BigUint& rhs) const;
  BigUint operator/(const BigUint& rhs) const;
  BigUint operator%(const BigUint& rhs) const;
  BigUint operator<<(std::size_t bits) const;
  BigUint operator>>(std::size_t bits) const;

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator-=(const BigUint& rhs);
  BigUint& operator*=(const BigUint& rhs);

  /// Fast paths on a machine word.
  BigUint& mul_u64(std::uint64_t m);
  BigUint& add_u64(std::uint64_t a);
  /// Divides in place by `d` and returns the remainder. `d` must be nonzero.
  std::uint64_t divmod_u64(std::uint64_t d);

  /// Quotient and remainder; throws CryptoError on division by zero.
  struct DivMod;
  static DivMod divmod(const BigUint& a, const BigUint& b);

  /// (a + b) mod m, assuming a, b < m.
  static BigUint add_mod(const BigUint& a, const BigUint& b, const BigUint& m);
  /// (a - b) mod m, assuming a, b < m.
  static BigUint sub_mod(const BigUint& a, const BigUint& b, const BigUint& m);
  /// (a * b) mod m.
  static BigUint mul_mod(const BigUint& a, const BigUint& b, const BigUint& m);
  /// a^e mod m. Odd m goes straight through Montgomery; even m is split as
  /// m = 2^s·q and recombined by CRT, so the odd part q still uses
  /// Montgomery and the 2-power part is truncated square-and-multiply —
  /// no caller can hit a per-step division path. Throws CryptoError when
  /// m is zero.
  static BigUint pow_mod(const BigUint& a, const BigUint& e, const BigUint& m);

  /// Greatest common divisor.
  static BigUint gcd(BigUint a, BigUint b);
  /// Modular inverse; throws CryptoError when gcd(a, m) != 1.
  static BigUint mod_inverse(const BigUint& a, const BigUint& m);

  /// Signed extended GCD: g = gcd(a, b) with coefficients
  /// (±x)·a + (±y)·b = g. Backs the universal accumulator's
  /// non-membership witnesses.
  struct ExtGcd;
  static ExtGcd ext_gcd(const BigUint& a, const BigUint& b);

  /// Direct limb access for the Montgomery engine (little-endian).
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }
  static BigUint from_limbs(std::vector<std::uint64_t> limbs);

 private:
  void normalize();

  static BigUint mul_schoolbook(const BigUint& a, const BigUint& b);
  static BigUint mul_karatsuba(const BigUint& a, const BigUint& b);
  BigUint slice_limbs(std::size_t from, std::size_t count) const;

  std::vector<std::uint64_t> limbs_;
};

/// Result of BigUint::divmod.
struct BigUint::DivMod {
  BigUint quotient;
  BigUint remainder;
};

/// Result of BigUint::ext_gcd: gcd plus signed Bézout coefficients.
struct BigUint::ExtGcd {
  BigUint gcd;
  BigUint x;  // |coefficient of a|
  bool x_negative = false;
  BigUint y;  // |coefficient of b|
  bool y_negative = false;
};

}  // namespace slicer::bigint

/// Hash over the normalized limb vector — lets hot-path dictionaries key on
/// BigUint directly instead of paying a to_hex()/to_bytes_be() encoding per
/// lookup (the cloud's prime-position map is the motivating case).
template <>
struct std::hash<slicer::bigint::BigUint> {
  std::size_t operator()(const slicer::bigint::BigUint& v) const noexcept {
    // splitmix64 finalizer folded over the limbs; normalization makes the
    // limb vector a canonical representation, so equal values hash equally.
    std::uint64_t h = 0x9e3779b97f4a7c15ull + v.limb_count();
    for (const std::uint64_t limb : v.limbs()) {
      h ^= limb;
      h *= 0xbf58476d1ce4e5b9ull;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebull;
      h ^= h >> 31;
    }
    return static_cast<std::size_t>(h);
  }
};

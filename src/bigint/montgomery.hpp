// Montgomery modular arithmetic (CIOS) for odd moduli.
//
// All heavy modular exponentiation in the library — RSA accumulator
// accumulation / witnesses / verification and the RSA trapdoor permutation —
// runs through this engine. Construction precomputes R² mod n and
// −n⁻¹ mod 2⁶⁴ once; `pow` then uses 4-bit fixed windows.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/biguint.hpp"

namespace slicer::bigint {

/// Montgomery context bound to one odd modulus.
class Montgomery {
 public:
  /// Throws CryptoError unless `modulus` is odd and > 1.
  explicit Montgomery(const BigUint& modulus);

  /// (a * b) mod n, both operands in the regular domain.
  BigUint mul(const BigUint& a, const BigUint& b) const;

  /// base^exp mod n.
  BigUint pow(const BigUint& base, const BigUint& exp) const;

  const BigUint& modulus() const { return n_big_; }

 private:
  using u64 = std::uint64_t;

  std::vector<u64> to_mont(const BigUint& a) const;
  BigUint from_mont(const std::vector<u64>& a) const;

  /// out = a * b * R⁻¹ mod n (CIOS). All vectors have k_ limbs.
  void mont_mul(const std::vector<u64>& a, const std::vector<u64>& b,
                std::vector<u64>& out) const;

  BigUint n_big_;
  std::vector<u64> n_;      // modulus limbs, length k_
  std::vector<u64> rr_;     // R² mod n, length k_
  std::vector<u64> one_;    // R mod n (Montgomery form of 1), length k_
  u64 n0inv_ = 0;           // −n⁻¹ mod 2⁶⁴
  std::size_t k_ = 0;
};

}  // namespace slicer::bigint

// Montgomery modular arithmetic (CIOS) for odd moduli.
//
// All heavy modular exponentiation in the library — RSA accumulator
// accumulation / witnesses / verification and the RSA trapdoor permutation —
// runs through this engine. Construction precomputes R² mod n and
// −n⁻¹ mod 2⁶⁴ once; `pow` then uses 4-bit fixed windows.
//
// Thread-safety contract: a constructed Montgomery is immutable; every
// method is const and touches no shared mutable state, so one instance may
// be used concurrently from any number of threads. The hot-path overloads
// take a caller-owned Scratch — keep one Scratch per thread (they are
// cheap, lazily sized buffers) and the CIOS kernel performs zero heap
// allocations once the scratch has warmed up.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/biguint.hpp"

namespace slicer::bigint {

/// Montgomery context bound to one odd modulus.
class Montgomery {
 public:
  using u64 = std::uint64_t;

  /// A residue in Montgomery form: exactly limb_count() little-endian
  /// limbs. Produced by to_mont / pow_mont, consumed by mul_mont /
  /// from_mont. Keeping chains of operations in this form skips the
  /// to/from-Montgomery round trip per step.
  using Elem = std::vector<u64>;

  /// Reusable working memory for the CIOS kernel and the pow window
  /// table. NOT thread-safe: use one per thread.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class Montgomery;
    std::vector<u64> t;        // CIOS accumulator, limb_count()+2 limbs
    std::vector<u64> tmp;      // swap buffer, limb_count() limbs
    std::vector<u64> table;    // 16·limb_count() flat window table
    std::vector<u64> staging;  // to_mont input staging
  };

  /// Throws CryptoError unless `modulus` is odd and > 1.
  explicit Montgomery(const BigUint& modulus);

  /// (a * b) mod n, both operands in the regular domain.
  BigUint mul(const BigUint& a, const BigUint& b) const;
  BigUint mul(const BigUint& a, const BigUint& b, Scratch& s) const;

  /// base^exp mod n.
  BigUint pow(const BigUint& base, const BigUint& exp) const;
  BigUint pow(const BigUint& base, const BigUint& exp, Scratch& s) const;

  // -- Montgomery-domain API (hot paths) --------------------------------

  /// Converts into Montgomery form (reduces mod n first if needed).
  Elem to_mont(const BigUint& a, Scratch& s) const;

  /// Converts back to the regular domain.
  BigUint from_mont(const Elem& a, Scratch& s) const;

  /// out = a · b (Montgomery domain). `out` is resized to limb_count();
  /// it must not alias the scratch, but may alias `a` or `b`.
  void mul_mont(const Elem& a, const Elem& b, Elem& out, Scratch& s) const;

  /// out = base^exp (Montgomery domain, 4-bit fixed windows). exp is a
  /// regular (non-Montgomery) integer. `out` must not alias `base`.
  void pow_mont(const Elem& base, const BigUint& exp, Elem& out,
                Scratch& s) const;

  /// Montgomery form of 1 (i.e. R mod n).
  const Elem& one_mont() const { return one_; }

  const BigUint& modulus() const { return n_big_; }
  std::size_t limb_count() const { return k_; }

 private:
  /// CIOS kernel on raw limb pointers: out = a·b·R⁻¹ mod n. `a`, `b` and
  /// `out` are k_ limbs (out may alias a or b); `t` is the k_+2-limb
  /// accumulator. No allocation.
  void mont_mul_raw(const u64* a, const u64* b, u64* out, u64* t) const;

  /// Grows the scratch buffers to this modulus's widths (no-op once warm).
  void prepare(Scratch& s) const;

  BigUint n_big_;
  std::vector<u64> n_;        // modulus limbs, length k_
  std::vector<u64> rr_;       // R² mod n, length k_
  std::vector<u64> one_;      // R mod n (Montgomery form of 1), length k_
  std::vector<u64> lit_one_;  // literal 1 padded to k_ limbs (from_mont)
  u64 n0inv_ = 0;             // −n⁻¹ mod 2⁶⁴
  std::size_t k_ = 0;
};

}  // namespace slicer::bigint

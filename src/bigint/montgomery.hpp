// Montgomery modular arithmetic (CIOS) for odd moduli.
//
// All heavy modular exponentiation in the library — RSA accumulator
// accumulation / witnesses / verification and the RSA trapdoor permutation —
// runs through this engine. Construction precomputes R² mod n and
// −n⁻¹ mod 2⁶⁴ once; `pow` then uses sliding windows over a dedicated
// squaring kernel, and `FixedBase` adds a precomputed comb table for bases
// that are exponentiated many times (the accumulator generator g).
//
// Thread-safety contract: a constructed Montgomery is immutable; every
// method is const and touches no shared mutable state, so one instance may
// be used concurrently from any number of threads. The hot-path overloads
// take a caller-owned Scratch — keep one Scratch per thread (they are
// cheap, lazily sized buffers) and the CIOS kernel performs zero heap
// allocations once the scratch has warmed up. A FixedBase may also be
// shared across threads: its table is extended under an internal lock and
// read under a shared lock.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "bigint/biguint.hpp"

namespace slicer::bigint {

/// Montgomery context bound to one odd modulus.
class Montgomery {
 public:
  using u64 = std::uint64_t;

  /// A residue in Montgomery form: exactly limb_count() little-endian
  /// limbs. Produced by to_mont / pow_mont, consumed by mul_mont /
  /// from_mont. Keeping chains of operations in this form skips the
  /// to/from-Montgomery round trip per step.
  using Elem = std::vector<u64>;

  /// Reusable working memory for the CIOS kernel and the pow window
  /// table. NOT thread-safe: use one per thread.
  class Scratch {
   public:
    Scratch() = default;

   private:
    friend class Montgomery;
    std::vector<u64> t;        // CIOS/SOS accumulator, 2·limb_count()+2 limbs
    std::vector<u64> tmp;      // base² / comb run accumulator, limb_count()
    std::vector<u64> table;    // flat window / bucket table
    std::vector<u64> staging;  // to_mont input staging
  };

  /// Throws CryptoError unless `modulus` is odd and > 1.
  explicit Montgomery(const BigUint& modulus);

  /// (a * b) mod n, both operands in the regular domain.
  BigUint mul(const BigUint& a, const BigUint& b) const;
  BigUint mul(const BigUint& a, const BigUint& b, Scratch& s) const;

  /// base^exp mod n.
  BigUint pow(const BigUint& base, const BigUint& exp) const;
  BigUint pow(const BigUint& base, const BigUint& exp, Scratch& s) const;

  // -- Montgomery-domain API (hot paths) --------------------------------

  /// Converts into Montgomery form (reduces mod n first if needed).
  Elem to_mont(const BigUint& a, Scratch& s) const;

  /// Converts back to the regular domain.
  BigUint from_mont(const Elem& a, Scratch& s) const;

  /// out = a · b (Montgomery domain). `out` is resized to limb_count();
  /// it must not alias the scratch, but may alias `a` or `b`.
  void mul_mont(const Elem& a, const Elem& b, Elem& out, Scratch& s) const;

  /// out = base^exp (Montgomery domain, sliding windows whose width adapts
  /// to the exponent length). exp is a regular (non-Montgomery) integer.
  /// `out` must not alias `base`.
  void pow_mont(const Elem& base, const BigUint& exp, Elem& out,
                Scratch& s) const;

  /// Montgomery form of 1 (i.e. R mod n).
  const Elem& one_mont() const { return one_; }

  const BigUint& modulus() const { return n_big_; }
  std::size_t limb_count() const { return k_; }

  /// Precomputed fixed-base comb table; defined out-of-line below because
  /// it embeds a full copy of the (then-complete) Montgomery context.
  class FixedBase;

 private:
  /// CIOS kernel on raw limb pointers: out = a·b·R⁻¹ mod n. `a`, `b` and
  /// `out` are k_ limbs (out may alias a or b); `t` is the scratch
  /// accumulator (≥ k_+2 limbs). No allocation.
  void mont_mul_raw(const u64* a, const u64* b, u64* out, u64* t) const;

  /// Dedicated squaring kernel: out = a²·R⁻¹ mod n. Exploits the symmetry
  /// of the product (half the partial products of mont_mul_raw). `t` needs
  /// 2·k_+2 limbs; `out` may alias `a`. No allocation.
  void mont_sqr_raw(const u64* a, u64* out, u64* t) const;

  /// Grows the scratch buffers to this modulus's widths (no-op once warm).
  void prepare(Scratch& s) const;

  BigUint n_big_;
  std::vector<u64> n_;        // modulus limbs, length k_
  std::vector<u64> rr_;       // R² mod n, length k_
  std::vector<u64> one_;      // R mod n (Montgomery form of 1), length k_
  std::vector<u64> lit_one_;  // literal 1 padded to k_ limbs (from_mont)
  u64 n0inv_ = 0;             // −n⁻¹ mod 2⁶⁴
  std::size_t k_ = 0;
};

/// Precomputed fixed-base exponentiation table (comb / radix-2^w).
///
/// Stores G[i] = base^(2^(w·i)) in Montgomery form for i = 0..digits-1,
/// where w = kWindowBits. Short exponents are evaluated comb-style (w
/// squarings plus one multiply per set exponent bit); long exponents use
/// the Yao/BGMW bucket aggregation (one multiply per w-bit digit plus
/// ~2^(w+1) aggregation multiplies, and **zero** squarings). Both paths
/// compute the exact same residue as the generic pow — any order of
/// exact modular multiplications yields the same value.
///
/// The table is built once per (modulus, base) and extended lazily when
/// a longer exponent arrives; extension happens under an internal
/// exclusive lock while evaluation takes a shared lock, so one FixedBase
/// may be used concurrently from any number of threads. Exponents whose
/// table would exceed kMaxTableBits fall back to the generic sliding
/// window (see DESIGN.md §3d for the memory trade-off).
class Montgomery::FixedBase {
 public:
  /// Comb tooth spacing: each table entry covers w exponent bits.
  static constexpr unsigned kWindowBits = 6;
  /// Exponents at most this long use the direct comb evaluation; longer
  /// ones switch to bucket aggregation (crossover of the two cost models;
  /// see DESIGN.md §3d).
  static constexpr std::size_t kCombDirectBits = 384;
  /// Hard cap on table coverage: ~1M exponent bits ≈ 21 MB of table at a
  /// 1024-bit modulus. Beyond it, pow falls back to Montgomery::pow_mont.
  static constexpr std::size_t kMaxTableBits = std::size_t{1} << 20;

  /// Builds the initial table covering `initial_bits` of exponent.
  /// `base` is reduced mod n. The FixedBase keeps its own copy of the
  /// (small) Montgomery context, so it stays valid even if `mont` is
  /// later moved or destroyed.
  FixedBase(const Montgomery& mont, const BigUint& base,
            std::size_t initial_bits = 1024);

  FixedBase(const FixedBase&) = delete;
  FixedBase& operator=(const FixedBase&) = delete;

  /// out = base^exp in Montgomery form.
  void pow_mont(const BigUint& exp, Elem& out, Scratch& s) const;

  /// base^exp mod n in the regular domain.
  BigUint pow(const BigUint& exp, Scratch& s) const;
  BigUint pow(const BigUint& exp) const;

  /// Exponent bits currently covered by the table (grows on demand).
  std::size_t table_bits() const;

 private:
  /// Extends the table to at least `digits` entries (exclusive lock).
  void ensure_digits(std::size_t digits) const;

  const Montgomery mont_;  // own copy: ~4 modulus-sized vectors
  mutable std::shared_mutex mu_;
  mutable std::vector<u64> table_;  // digits_ × limb_count() flat entries
  mutable std::size_t digits_ = 0;
};

}  // namespace slicer::bigint

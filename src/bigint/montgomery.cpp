#include "bigint/montgomery.hpp"

#include <cassert>

#include "common/errors.hpp"

namespace slicer::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {

/// Inverse of an odd `a` modulo 2⁶⁴ by Newton–Hensel lifting.
u64 inv_u64(u64 a) {
  u64 x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;  // doubles correct bits
  return x;
}

/// Compares two equal-length limb vectors (little-endian).
bool geq(const std::vector<u64>& a, const std::vector<u64>& b) {
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

}  // namespace

Montgomery::Montgomery(const BigUint& modulus) : n_big_(modulus) {
  if (!modulus.is_odd() || modulus.is_one())
    throw CryptoError("Montgomery modulus must be odd and > 1");
  n_ = modulus.limbs();
  k_ = n_.size();
  n0inv_ = static_cast<u64>(0) - inv_u64(n_[0]);

  // R = 2^(64k); compute R mod n and R² mod n with plain BigUint division.
  const BigUint r = BigUint(1) << (64 * k_);
  const BigUint r_mod = r % modulus;
  const BigUint rr_mod = (r_mod * r_mod) % modulus;

  auto pad = [this](const BigUint& v) {
    std::vector<u64> out = v.limbs();
    out.resize(k_, 0);
    return out;
  };
  one_ = pad(r_mod);
  rr_ = pad(rr_mod);
}

void Montgomery::mont_mul(const std::vector<u64>& a, const std::vector<u64>& b,
                          std::vector<u64>& out) const {
  // CIOS: t has k_+2 limbs.
  std::vector<u64> t(k_ + 2, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a * b[i]
    u64 carry = 0;
    const u64 bi = b[i];
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);

    // Reduce one limb: m = t[0] * n0inv mod 2^64; t = (t + m*n) / 2^64.
    const u64 m = t[0] * n0inv_;
    cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      cur = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
  }

  t.resize(k_ + 1);
  if (t[k_] != 0 ||
      geq(std::vector<u64>(t.begin(), t.begin() + static_cast<long>(k_)), n_)) {
    // Subtract n once; with a,b < n the result then fits in k_ limbs.
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 sub = static_cast<u128>(t[i]) - n_[i] - borrow;
      t[i] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    t[k_] -= borrow;
    assert(t[k_] == 0);
  }
  out.assign(t.begin(), t.begin() + static_cast<long>(k_));
}

std::vector<u64> Montgomery::to_mont(const BigUint& a) const {
  BigUint reduced = a;
  if (reduced >= n_big_) reduced = reduced % n_big_;
  std::vector<u64> padded = reduced.limbs();
  padded.resize(k_, 0);
  std::vector<u64> out;
  mont_mul(padded, rr_, out);
  return out;
}

BigUint Montgomery::from_mont(const std::vector<u64>& a) const {
  std::vector<u64> one(k_, 0);
  one[0] = 1;
  std::vector<u64> out;
  mont_mul(a, one, out);
  return BigUint::from_limbs(out);
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  const std::vector<u64> am = to_mont(a);
  const std::vector<u64> bm = to_mont(b);
  std::vector<u64> prod;
  mont_mul(am, bm, prod);
  return from_mont(prod);
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  if (exp.is_zero()) return BigUint(1) % n_big_;

  const std::vector<u64> base_m = to_mont(base);

  // Precompute base^0..base^15 in Montgomery form (4-bit fixed window).
  std::vector<std::vector<u64>> table(16);
  table[0] = one_;
  table[1] = base_m;
  for (int i = 2; i < 16; ++i) mont_mul(table[static_cast<std::size_t>(i - 1)], base_m, table[static_cast<std::size_t>(i)]);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;

  std::vector<u64> acc = one_;  // Montgomery form of 1
  std::vector<u64> tmp;
  for (std::size_t w = windows; w-- > 0;) {
    for (int s = 0; s < 4; ++s) {
      mont_mul(acc, acc, tmp);
      acc.swap(tmp);
    }
    unsigned digit = 0;
    for (int b = 3; b >= 0; --b)
      digit = (digit << 1) | (exp.bit(w * 4 + static_cast<std::size_t>(b)) ? 1u : 0u);
    if (digit != 0) {
      mont_mul(acc, table[digit], tmp);
      acc.swap(tmp);
    }
  }
  return from_mont(acc);
}

}  // namespace slicer::bigint

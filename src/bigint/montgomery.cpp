#include "bigint/montgomery.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <mutex>

#include "common/errors.hpp"

namespace slicer::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {

/// Inverse of an odd `a` modulo 2⁶⁴ by Newton–Hensel lifting.
u64 inv_u64(u64 a) {
  u64 x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;  // doubles correct bits
  return x;
}

/// Compares two equal-length limb ranges (little-endian).
bool geq(const u64* a, const u64* b, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

/// Sliding-window width by exponent length: the break-even points of
/// (2^(w−1) table multiplies) + (bits/(w+1) window multiplies).
unsigned window_bits_for(std::size_t bits) {
  if (bits <= 8) return 2;
  if (bits <= 32) return 3;
  if (bits <= 160) return 4;
  if (bits <= 1024) return 5;
  return 6;
}

}  // namespace

Montgomery::Montgomery(const BigUint& modulus) : n_big_(modulus) {
  if (!modulus.is_odd() || modulus.is_one())
    throw CryptoError("Montgomery modulus must be odd and > 1");
  n_ = modulus.limbs();
  k_ = n_.size();
  n0inv_ = static_cast<u64>(0) - inv_u64(n_[0]);

  // R = 2^(64k); compute R mod n and R² mod n with plain BigUint division.
  const BigUint r = BigUint(1) << (64 * k_);
  const BigUint r_mod = r % modulus;
  const BigUint rr_mod = (r_mod * r_mod) % modulus;

  auto pad = [this](const BigUint& v) {
    std::vector<u64> out = v.limbs();
    out.resize(k_, 0);
    return out;
  };
  one_ = pad(r_mod);
  rr_ = pad(rr_mod);
  lit_one_ = pad(BigUint(1));
}

void Montgomery::prepare(Scratch& s) const {
  // Exact sizes: a scratch shared across moduli of different widths keeps
  // its capacity, so these resizes stop allocating once warm. `t` is sized
  // for the squaring kernel's full double-width product.
  s.t.resize(2 * k_ + 2);
  s.tmp.resize(k_);
  s.staging.resize(k_);
}

void Montgomery::mont_mul_raw(const u64* a, const u64* b, u64* out,
                              u64* t) const {
  // CIOS: uses the first k_+2 limbs of t.
  for (std::size_t i = 0; i < k_ + 2; ++i) t[i] = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a * b[i]
    u64 carry = 0;
    const u64 bi = b[i];
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);

    // Reduce one limb: m = t[0] * n0inv mod 2^64; t = (t + m*n) / 2^64.
    const u64 m = t[0] * n0inv_;
    cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      cur = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
  }

  if (t[k_] != 0 || geq(t, n_.data(), k_)) {
    // Subtract n once; with a,b < n the result then fits in k_ limbs.
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 sub = static_cast<u128>(t[i]) - n_[i] - borrow;
      t[i] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    t[k_] -= borrow;
    assert(t[k_] == 0);
  }
  for (std::size_t i = 0; i < k_; ++i) out[i] = t[i];
}

void Montgomery::mont_sqr_raw(const u64* a, u64* out, u64* t) const {
  // SOS squaring: the full 2k-limb square needs only k(k+1)/2 word
  // multiplies (strict upper triangle, doubled, plus the diagonal) versus
  // the k² of a generic product, and the Montgomery reduction then runs
  // over the finished product. Exponentiation is squaring-dominated, so
  // this kernel is where sliding windows and the comb spend their time.
  const std::size_t k = k_;
  for (std::size_t i = 0; i < 2 * k + 2; ++i) t[i] = 0;

  // Strict upper triangle: t += a[i]·a[j] for i < j.
  for (std::size_t i = 0; i + 1 < k; ++i) {
    u64 carry = 0;
    const u64 ai = a[i];
    for (std::size_t j = i + 1; j < k; ++j) {
      const u128 cur = static_cast<u128>(ai) * a[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    t[i + k] = carry;  // first write to this limb (rows end at i+k−1)
  }

  // Double the triangle. 2·(cross terms) ≤ a² < R², so no bit falls out.
  u64 carry_bit = 0;
  for (std::size_t i = 0; i < 2 * k; ++i) {
    const u64 v = t[i];
    t[i] = (v << 1) | carry_bit;
    carry_bit = v >> 63;
  }
  assert(carry_bit == 0);

  // Add the diagonal a[i]² at limb 2i; the carry rides into the next pair.
  u64 c = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 cur = static_cast<u128>(t[2 * i]) + static_cast<u64>(sq) + c;
    t[2 * i] = static_cast<u64>(cur);
    cur = static_cast<u128>(t[2 * i + 1]) + static_cast<u64>(sq >> 64) +
          static_cast<u64>(cur >> 64);
    t[2 * i + 1] = static_cast<u64>(cur);
    c = static_cast<u64>(cur >> 64);
  }
  assert(c == 0);  // a² fits in 2k limbs

  // Montgomery reduction of the finished 2k-limb product.
  for (std::size_t i = 0; i < k; ++i) {
    const u64 m = t[i] * n0inv_;
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 cur =
          static_cast<u128>(t[i + j]) + static_cast<u128>(m) * n_[j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (std::size_t idx = i + k; carry != 0; ++idx) {
      const u128 cur = static_cast<u128>(t[idx]) + carry;
      t[idx] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
  }

  // Result = t[k..2k) (+ overflow limb); it is < 2n, so subtract n at most
  // once.
  if (t[2 * k] != 0 || geq(t + k, n_.data(), k)) {
    u64 borrow = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u128 sub = static_cast<u128>(t[k + i]) - n_[i] - borrow;
      t[k + i] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    t[2 * k] -= borrow;
    assert(t[2 * k] == 0);
  }
  for (std::size_t i = 0; i < k; ++i) out[i] = t[k + i];
}

Montgomery::Elem Montgomery::to_mont(const BigUint& a, Scratch& s) const {
  prepare(s);
  const BigUint* src = &a;
  BigUint reduced;
  if (a >= n_big_) {
    reduced = a % n_big_;
    src = &reduced;
  }
  const std::vector<u64>& limbs = src->limbs();
  for (std::size_t i = 0; i < k_; ++i)
    s.staging[i] = i < limbs.size() ? limbs[i] : 0;
  Elem out(k_);
  mont_mul_raw(s.staging.data(), rr_.data(), out.data(), s.t.data());
  return out;
}

BigUint Montgomery::from_mont(const Elem& a, Scratch& s) const {
  prepare(s);
  std::vector<u64> out(k_);
  mont_mul_raw(a.data(), lit_one_.data(), out.data(), s.t.data());
  return BigUint::from_limbs(std::move(out));
}

void Montgomery::mul_mont(const Elem& a, const Elem& b, Elem& out,
                          Scratch& s) const {
  prepare(s);
  out.resize(k_);
  mont_mul_raw(a.data(), b.data(), out.data(), s.t.data());
}

void Montgomery::pow_mont(const Elem& base, const BigUint& exp, Elem& out,
                          Scratch& s) const {
  prepare(s);
  out.assign(one_.begin(), one_.end());  // Montgomery form of 1
  if (exp.is_zero()) return;

  const std::size_t bits = exp.bit_length();
  const unsigned w = window_bits_for(bits);
  const std::size_t tcount = std::size_t{1} << (w - 1);

  // Precompute the odd powers base^1, base^3, …, base^(2^w − 1), flat in
  // the scratch so repeated pow calls reuse one allocation.
  s.table.resize(tcount * k_);
  u64* tbl = s.table.data();
  u64* t = s.t.data();
  for (std::size_t i = 0; i < k_; ++i) tbl[i] = base[i];
  if (tcount > 1) {
    mont_sqr_raw(base.data(), s.tmp.data(), t);  // base²
    for (std::size_t i = 1; i < tcount; ++i)
      mont_mul_raw(tbl + (i - 1) * k_, s.tmp.data(), tbl + i * k_, t);
  }

  // Left-to-right sliding window: runs of zeros cost one squaring per bit;
  // a window (clamped to w bits, ending on a set bit, hence an odd digit)
  // costs its width in squarings plus one table multiply. The leading
  // window initializes `out` directly instead of squaring 1 along.
  bool started = false;
  std::size_t i = bits;
  while (i > 0) {
    const std::size_t hi = i - 1;
    if (!exp.bit(hi)) {
      if (started) mont_sqr_raw(out.data(), out.data(), t);
      --i;
      continue;
    }
    std::size_t lo = hi + 1 >= w ? hi + 1 - w : 0;
    while (!exp.bit(lo)) ++lo;
    unsigned digit = 0;
    for (std::size_t b = hi + 1; b-- > lo;)
      digit = (digit << 1) | (exp.bit(b) ? 1u : 0u);
    if (started) {
      for (std::size_t sq = 0; sq < hi - lo + 1; ++sq)
        mont_sqr_raw(out.data(), out.data(), t);
      mont_mul_raw(out.data(), tbl + (digit >> 1) * k_, out.data(), t);
    } else {
      const u64* src = tbl + (digit >> 1) * k_;
      for (std::size_t j = 0; j < k_; ++j) out[j] = src[j];
      started = true;
    }
    i = lo;
  }
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b, Scratch& s) const {
  const Elem am = to_mont(a, s);
  const Elem bm = to_mont(b, s);
  Elem prod;
  mul_mont(am, bm, prod, s);
  return from_mont(prod, s);
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  Scratch s;
  return mul(a, b, s);
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp,
                        Scratch& s) const {
  if (exp.is_zero()) return BigUint(1) % n_big_;
  const Elem base_m = to_mont(base, s);
  Elem acc;
  pow_mont(base_m, exp, acc, s);
  return from_mont(acc, s);
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  Scratch s;
  return pow(base, exp, s);
}

// ---------------------------------------------------------------------------
// FixedBase: comb table for one (modulus, base) pair.

Montgomery::FixedBase::FixedBase(const Montgomery& mont, const BigUint& base,
                                 std::size_t initial_bits)
    : mont_(mont) {
  Scratch s;
  const Elem b = mont_.to_mont(base, s);
  table_.assign(b.begin(), b.end());
  digits_ = 1;
  const std::size_t want_bits =
      std::min(std::max<std::size_t>(initial_bits, kWindowBits), kMaxTableBits);
  ensure_digits((want_bits + kWindowBits - 1) / kWindowBits);
}

std::size_t Montgomery::FixedBase::table_bits() const {
  std::shared_lock lk(mu_);
  return digits_ * kWindowBits;
}

void Montgomery::FixedBase::ensure_digits(std::size_t digits) const {
  std::unique_lock lk(mu_);
  if (digits_ >= digits) return;
  const std::size_t k = mont_.k_;
  std::vector<u64> t(2 * k + 2);
  table_.resize(digits * k);
  for (std::size_t i = digits_; i < digits; ++i) {
    // G[i] = G[i−1]^(2^w): copy the previous entry and square w times.
    u64* cur = table_.data() + i * k;
    const u64* prev = cur - k;
    for (std::size_t j = 0; j < k; ++j) cur[j] = prev[j];
    for (unsigned sq = 0; sq < kWindowBits; ++sq)
      mont_.mont_sqr_raw(cur, cur, t.data());
  }
  digits_ = digits;
}

void Montgomery::FixedBase::pow_mont(const BigUint& exp, Elem& out,
                                     Scratch& s) const {
  const Montgomery& m = mont_;
  m.prepare(s);
  const std::size_t k = m.k_;
  out.assign(m.one_.begin(), m.one_.end());
  if (exp.is_zero()) return;

  const std::size_t bits = exp.bit_length();
  if (bits > kMaxTableBits) {
    // The table for this exponent would blow the memory cap; run the
    // generic sliding window from G[0] (= base in Montgomery form).
    Elem base(k);
    {
      std::shared_lock lk(mu_);
      const u64* g0 = table_.data();
      for (std::size_t j = 0; j < k; ++j) base[j] = g0[j];
    }
    m.pow_mont(base, exp, out, s);
    return;
  }

  const std::size_t digits = (bits + kWindowBits - 1) / kWindowBits;
  std::shared_lock lk(mu_);
  if (digits_ < digits) {
    lk.unlock();
    ensure_digits(digits);
    lk.lock();
  }
  const u64* table = table_.data();
  u64* t = s.t.data();

  if (bits <= kCombDirectBits) {
    // Direct comb: w squarings total, one multiply per set exponent bit.
    // Bit-plane b contributes G[i]^(2^b) after the remaining b squarings.
    for (unsigned b = kWindowBits; b-- > 0;) {
      m.mont_sqr_raw(out.data(), out.data(), t);
      for (std::size_t i = 0; i < digits; ++i) {
        if (exp.bit(i * kWindowBits + b))
          m.mont_mul_raw(out.data(), table + i * k, out.data(), t);
      }
    }
    return;
  }

  // Yao/BGMW bucket aggregation — no squarings at all: group the table
  // entries by digit value (one multiply per nonzero digit), then fold
  // buckets with a descending suffix product so bucket[j] lands with
  // exponent j:  ∏_j bucket[j]^j = ∏_j (suffix products ≥ j).
  constexpr std::size_t kBuckets = std::size_t{1} << kWindowBits;
  s.table.resize(kBuckets * k);
  u64* buckets = s.table.data();
  std::array<bool, kBuckets> used{};
  for (std::size_t i = 0; i < digits; ++i) {
    unsigned digit = 0;
    for (unsigned b = kWindowBits; b-- > 0;)
      digit = (digit << 1) | (exp.bit(i * kWindowBits + b) ? 1u : 0u);
    if (digit == 0) continue;
    u64* slot = buckets + digit * k;
    if (!used[digit]) {
      const u64* src = table + i * k;
      for (std::size_t j = 0; j < k; ++j) slot[j] = src[j];
      used[digit] = true;
    } else {
      m.mont_mul_raw(slot, table + i * k, slot, t);
    }
  }
  u64* run = s.tmp.data();  // suffix product of buckets
  bool run_started = false;
  for (std::size_t j = kBuckets - 1; j >= 1; --j) {
    if (used[j]) {
      if (!run_started) {
        const u64* src = buckets + j * k;
        for (std::size_t i = 0; i < k; ++i) run[i] = src[i];
        run_started = true;
      } else {
        m.mont_mul_raw(run, buckets + j * k, run, t);
      }
    }
    if (run_started) m.mont_mul_raw(out.data(), run, out.data(), t);
  }
}

BigUint Montgomery::FixedBase::pow(const BigUint& exp, Scratch& s) const {
  if (exp.is_zero()) return BigUint(1) % mont_.n_big_;
  Elem acc;
  pow_mont(exp, acc, s);
  return mont_.from_mont(acc, s);
}

BigUint Montgomery::FixedBase::pow(const BigUint& exp) const {
  Scratch s;
  return pow(exp, s);
}

}  // namespace slicer::bigint

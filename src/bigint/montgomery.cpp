#include "bigint/montgomery.hpp"

#include <cassert>

#include "common/errors.hpp"

namespace slicer::bigint {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

namespace {

/// Inverse of an odd `a` modulo 2⁶⁴ by Newton–Hensel lifting.
u64 inv_u64(u64 a) {
  u64 x = 1;
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;  // doubles correct bits
  return x;
}

/// Compares two equal-length limb ranges (little-endian).
bool geq(const u64* a, const u64* b, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

}  // namespace

Montgomery::Montgomery(const BigUint& modulus) : n_big_(modulus) {
  if (!modulus.is_odd() || modulus.is_one())
    throw CryptoError("Montgomery modulus must be odd and > 1");
  n_ = modulus.limbs();
  k_ = n_.size();
  n0inv_ = static_cast<u64>(0) - inv_u64(n_[0]);

  // R = 2^(64k); compute R mod n and R² mod n with plain BigUint division.
  const BigUint r = BigUint(1) << (64 * k_);
  const BigUint r_mod = r % modulus;
  const BigUint rr_mod = (r_mod * r_mod) % modulus;

  auto pad = [this](const BigUint& v) {
    std::vector<u64> out = v.limbs();
    out.resize(k_, 0);
    return out;
  };
  one_ = pad(r_mod);
  rr_ = pad(rr_mod);
  lit_one_ = pad(BigUint(1));
}

void Montgomery::prepare(Scratch& s) const {
  // Exact sizes: a scratch shared across moduli of different widths keeps
  // its capacity, so these resizes stop allocating once warm.
  s.t.resize(k_ + 2);
  s.tmp.resize(k_);
  s.staging.resize(k_);
}

void Montgomery::mont_mul_raw(const u64* a, const u64* b, u64* out,
                              u64* t) const {
  // CIOS: t has k_+2 limbs.
  for (std::size_t i = 0; i < k_ + 2; ++i) t[i] = 0;
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a * b[i]
    u64 carry = 0;
    const u64 bi = b[i];
    for (std::size_t j = 0; j < k_; ++j) {
      const u128 cur = static_cast<u128>(a[j]) * bi + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k_]) + carry;
    t[k_] = static_cast<u64>(cur);
    t[k_ + 1] = static_cast<u64>(cur >> 64);

    // Reduce one limb: m = t[0] * n0inv mod 2^64; t = (t + m*n) / 2^64.
    const u64 m = t[0] * n0inv_;
    cur = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_[0];
    carry = static_cast<u64>(cur >> 64);
    for (std::size_t j = 1; j < k_; ++j) {
      cur = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_[j] + carry;
      t[j - 1] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    cur = static_cast<u128>(t[k_]) + carry;
    t[k_ - 1] = static_cast<u64>(cur);
    t[k_] = t[k_ + 1] + static_cast<u64>(cur >> 64);
    t[k_ + 1] = 0;
  }

  if (t[k_] != 0 || geq(t, n_.data(), k_)) {
    // Subtract n once; with a,b < n the result then fits in k_ limbs.
    u64 borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      const u128 sub = static_cast<u128>(t[i]) - n_[i] - borrow;
      t[i] = static_cast<u64>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    t[k_] -= borrow;
    assert(t[k_] == 0);
  }
  for (std::size_t i = 0; i < k_; ++i) out[i] = t[i];
}

Montgomery::Elem Montgomery::to_mont(const BigUint& a, Scratch& s) const {
  prepare(s);
  const BigUint* src = &a;
  BigUint reduced;
  if (a >= n_big_) {
    reduced = a % n_big_;
    src = &reduced;
  }
  const std::vector<u64>& limbs = src->limbs();
  for (std::size_t i = 0; i < k_; ++i)
    s.staging[i] = i < limbs.size() ? limbs[i] : 0;
  Elem out(k_);
  mont_mul_raw(s.staging.data(), rr_.data(), out.data(), s.t.data());
  return out;
}

BigUint Montgomery::from_mont(const Elem& a, Scratch& s) const {
  prepare(s);
  std::vector<u64> out(k_);
  mont_mul_raw(a.data(), lit_one_.data(), out.data(), s.t.data());
  return BigUint::from_limbs(std::move(out));
}

void Montgomery::mul_mont(const Elem& a, const Elem& b, Elem& out,
                          Scratch& s) const {
  prepare(s);
  out.resize(k_);
  mont_mul_raw(a.data(), b.data(), out.data(), s.t.data());
}

void Montgomery::pow_mont(const Elem& base, const BigUint& exp, Elem& out,
                          Scratch& s) const {
  prepare(s);
  out.assign(one_.begin(), one_.end());  // Montgomery form of 1
  if (exp.is_zero()) return;

  // Precompute base^0..base^15 in Montgomery form (4-bit fixed window),
  // flat in the scratch so repeated pow calls reuse one allocation.
  s.table.resize(16 * k_);
  u64* table = s.table.data();
  u64* t = s.t.data();
  for (std::size_t i = 0; i < k_; ++i) {
    table[i] = one_[i];
    table[k_ + i] = base[i];
  }
  for (std::size_t i = 2; i < 16; ++i)
    mont_mul_raw(table + (i - 1) * k_, base.data(), table + i * k_, t);

  const std::size_t bits = exp.bit_length();
  const std::size_t windows = (bits + 3) / 4;

  for (std::size_t w = windows; w-- > 0;) {
    for (int sq = 0; sq < 4; ++sq) {
      mont_mul_raw(out.data(), out.data(), s.tmp.data(), t);
      out.swap(s.tmp);
    }
    unsigned digit = 0;
    for (int b = 3; b >= 0; --b)
      digit =
          (digit << 1) | (exp.bit(w * 4 + static_cast<std::size_t>(b)) ? 1u : 0u);
    if (digit != 0) {
      mont_mul_raw(out.data(), table + digit * k_, s.tmp.data(), t);
      out.swap(s.tmp);
    }
  }
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b, Scratch& s) const {
  const Elem am = to_mont(a, s);
  const Elem bm = to_mont(b, s);
  Elem prod;
  mul_mont(am, bm, prod, s);
  return from_mont(prod, s);
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  Scratch s;
  return mul(a, b, s);
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp,
                        Scratch& s) const {
  if (exp.is_zero()) return BigUint(1) % n_big_;
  const Elem base_m = to_mont(base, s);
  Elem acc;
  pow_mont(base_m, exp, acc, s);
  return from_mont(acc, s);
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  Scratch s;
  return pow(base, exp, s);
}

}  // namespace slicer::bigint

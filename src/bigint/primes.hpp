// Primality testing and prime generation.
//
// Miller–Rabin with deterministic witness sets for 64-bit inputs and random
// witnesses (drawn from the caller's DRBG) above that. Safe-prime generation
// backs the RSA accumulator setup.
#pragma once

#include "bigint/biguint.hpp"
#include "crypto/drbg.hpp"

namespace slicer::bigint {

/// Uniform BigUint in [0, bound). `bound` must be nonzero.
BigUint random_below(crypto::Drbg& rng, const BigUint& bound);

/// Uniform BigUint with exactly `bits` bits (top bit set). `bits` >= 2.
BigUint random_bits(crypto::Drbg& rng, std::size_t bits);

/// Miller–Rabin probable-prime test. `rounds` extra random rounds are used
/// for inputs wider than 64 bits (deterministic below).
bool is_probable_prime(const BigUint& n, crypto::Drbg& rng, int rounds = 32);

/// Fully deterministic Miller–Rabin with the fixed witness set
/// {2,3,...,37}: exact for n < 2^64, a publicly recomputable heuristic
/// above (error < 2^-80 for random inputs). H_prime uses this so that every
/// party derives the same prime representative from the same bytes.
bool is_probable_prime_fixed(const BigUint& n);

/// Random probable prime with exactly `bits` bits.
BigUint generate_prime(crypto::Drbg& rng, std::size_t bits, int rounds = 32);

/// Random safe prime p = 2q + 1 (q also prime) with exactly `bits` bits.
/// Expensive for large widths; unit tests use small sizes and benchmarks use
/// the embedded parameters in adscrypto/params.hpp.
BigUint generate_safe_prime(crypto::Drbg& rng, std::size_t bits,
                            int rounds = 32);

}  // namespace slicer::bigint

// Primality testing and prime generation.
//
// Miller–Rabin with deterministic witness sets for 64-bit inputs and random
// witnesses (drawn from the caller's DRBG) above that. Safe-prime generation
// backs the RSA accumulator setup.
#pragma once

#include <cstdint>
#include <span>

#include "bigint/biguint.hpp"
#include "crypto/drbg.hpp"

namespace slicer::bigint {

/// n mod d for a nonzero word divisor. Horner over the limbs — unlike
/// divmod_u64 it never copies n, so trial-division loops stay
/// allocation-free.
std::uint64_t mod_u64(const BigUint& n, std::uint64_t d);

/// The trial-division sieve: the first 2048 primes (2 … 17863), ascending.
/// Built once on first use; read-only afterwards (safe to share across
/// threads).
std::span<const std::uint32_t> sieve_primes();

/// True only when a sieve prime p ≠ n divides n — i.e. n is certainly
/// composite (never true for a prime, so rejecting on this predicate can
/// never change which candidate H_prime settles on). Scans a width-scaled
/// prefix of the sieve: ~256 primes for one-limb candidates, all 2048 for
/// wider ones — trial division costs one multiply while Miller–Rabin
/// grows quadratically in limbs, so the break-even depth grows with width
/// (DESIGN.md §3d). A false result therefore proves nothing.
bool has_small_prime_factor(const BigUint& n);

/// Uniform BigUint in [0, bound). `bound` must be nonzero.
BigUint random_below(crypto::Drbg& rng, const BigUint& bound);

/// Uniform BigUint with exactly `bits` bits (top bit set). `bits` >= 2.
BigUint random_bits(crypto::Drbg& rng, std::size_t bits);

/// Miller–Rabin probable-prime test. `rounds` extra random rounds are used
/// for inputs wider than 64 bits (deterministic below).
bool is_probable_prime(const BigUint& n, crypto::Drbg& rng, int rounds = 32);

/// Fully deterministic Miller–Rabin with the fixed witness set
/// {2,3,...,37}: exact for n < 2^64, a publicly recomputable heuristic
/// above (error < 2^-80 for random inputs). H_prime uses this so that every
/// party derives the same prime representative from the same bytes.
bool is_probable_prime_fixed(const BigUint& n);

/// Random probable prime with exactly `bits` bits.
BigUint generate_prime(crypto::Drbg& rng, std::size_t bits, int rounds = 32);

/// Random safe prime p = 2q + 1 (q also prime) with exactly `bits` bits.
/// Expensive for large widths; unit tests use small sizes and benchmarks use
/// the embedded parameters in adscrypto/params.hpp.
BigUint generate_safe_prime(crypto::Drbg& rng, std::size_t bits,
                            int rounds = 32);

}  // namespace slicer::bigint

#include "bigint/primes.hpp"

#include <array>
#include <vector>

#include "bigint/montgomery.hpp"
#include "common/errors.hpp"

namespace slicer::bigint {

namespace {

/// The 2048th prime — upper bound of the trial-division sieve.
constexpr std::uint32_t kSieveLimit = 17863;

std::vector<std::uint32_t> build_sieve() {
  std::vector<bool> composite(kSieveLimit + 1, false);
  std::vector<std::uint32_t> primes;
  primes.reserve(2048);
  for (std::uint32_t i = 2; i <= kSieveLimit; ++i) {
    if (composite[i]) continue;
    primes.push_back(i);
    for (std::uint64_t j = std::uint64_t{i} * i; j <= kSieveLimit; j += i)
      composite[static_cast<std::size_t>(j)] = true;
  }
  return primes;
}

// Small primes for trial-division prefiltering.
constexpr std::array<std::uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

// Deterministic Miller–Rabin witness set, sufficient for all n < 2^64.
constexpr std::array<std::uint64_t, 12> kDeterministicWitnesses = {
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};

/// One Miller–Rabin round: returns true when `n` passes for witness `a`.
/// `d` and `r` satisfy n - 1 = d * 2^r with d odd; `mont` is bound to n.
bool mr_round(const BigUint& n, const BigUint& a, const BigUint& d,
              std::size_t r, const Montgomery& mont) {
  const BigUint n_minus_1 = n - BigUint(1);
  BigUint x = mont.pow(a, d);
  if (x.is_one() || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = mont.mul(x, x);
    if (x == n_minus_1) return true;
    if (x.is_one()) return false;  // nontrivial sqrt of 1 => composite
  }
  return false;
}

}  // namespace

std::uint64_t mod_u64(const BigUint& n, std::uint64_t d) {
  if (d == 0) throw CryptoError("mod_u64: division by zero");
  const auto& limbs = n.limbs();
  std::uint64_t r = 0;
  for (std::size_t i = limbs.size(); i-- > 0;) {
    const unsigned __int128 acc =
        (static_cast<unsigned __int128>(r) << 64) | limbs[i];
    r = static_cast<std::uint64_t>(acc % d);
  }
  return r;
}

std::span<const std::uint32_t> sieve_primes() {
  static const std::vector<std::uint32_t> primes = build_sieve();
  return primes;
}

namespace {

/// Sieve entry with the constants of the multiply-based divisibility test:
/// for odd p, p | v ⟺ v·p⁻¹ (mod 2⁶⁴) ≤ ⌊(2⁶⁴−1)/p⌋ — one multiply and a
/// compare instead of a hardware division per prime.
struct SieveEntry {
  std::uint32_t p;
  std::uint64_t inv;  // p⁻¹ mod 2⁶⁴
  std::uint64_t lim;  // ⌊(2⁶⁴−1)/p⌋
};

const std::vector<SieveEntry>& sieve_entries() {
  static const std::vector<SieveEntry> entries = [] {
    std::vector<SieveEntry> out;
    const auto primes = sieve_primes();
    out.reserve(primes.size() - 1);
    for (std::size_t i = 1; i < primes.size(); ++i) {  // skip 2: parity bit
      const std::uint64_t p = primes[i];
      std::uint64_t inv = p;  // Hensel: each step doubles the correct bits
      for (int it = 0; it < 5; ++it) inv *= 2 - p * inv;
      out.push_back(SieveEntry{static_cast<std::uint32_t>(p), inv,
                               ~std::uint64_t{0} / p});
    }
    return out;
  }();
  return entries;
}

}  // namespace

bool has_small_prime_factor(const BigUint& n) {
  const auto& limbs = n.limbs();
  if (limbs.empty()) return false;  // 0 — let the primality test reject it
  if ((limbs[0] & 1) == 0) return n != BigUint(2);
  // Scan depth scales with width: the marginal gain of dividing by p is
  // ~cost(Miller–Rabin)/p, and Miller–Rabin grows quadratically in limbs
  // while a trial division is one multiply — so wide candidates afford the
  // whole sieve but one-limb candidates stop after 256 primes (any prefix
  // of the sieve is still an exact compositeness filter).
  const auto& entries = sieve_entries();
  const std::size_t depth =
      limbs.size() == 1
          ? std::min<std::size_t>(entries.size(), 256)
          : entries.size();
  if (limbs.size() == 1) {
    // One multiply per prime. v < p with p | v is impossible for odd
    // nonzero v, so a hit means v is a multiple — composite unless it is
    // the prime itself.
    const std::uint64_t v = limbs[0];
    for (std::size_t j = 0; j < depth; ++j) {
      const SieveEntry& e = entries[j];
      if (v * e.inv <= e.lim) return v != e.p;
    }
    return false;
  }
  // Multi-limb: Horner in 32-bit halves keeps every intermediate inside one
  // word (no 128-bit division). n ≥ 2⁶⁴ exceeds every sieve prime, so a
  // zero residue is always a true compositeness witness.
  for (std::size_t j = 0; j < depth; ++j) {
    const SieveEntry& e = entries[j];
    const std::uint64_t p = e.p;
    std::uint64_t r = 0;
    for (std::size_t i = limbs.size(); i-- > 0;) {
      r = ((r << 32) | (limbs[i] >> 32)) % p;
      r = ((r << 32) | (limbs[i] & 0xffffffffu)) % p;
    }
    if (r == 0) return true;
  }
  return false;
}

BigUint random_below(crypto::Drbg& rng, const BigUint& bound) {
  if (bound.is_zero()) throw CryptoError("random_below: zero bound");
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  const unsigned top_mask =
      bits % 8 == 0 ? 0xffu : ((1u << (bits % 8)) - 1u);
  // Rejection sampling: mask the top byte so ~half of the draws land below
  // the bound.
  for (;;) {
    Bytes raw = rng.generate(bytes);
    raw[0] &= static_cast<std::uint8_t>(top_mask);
    BigUint candidate = BigUint::from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

BigUint random_bits(crypto::Drbg& rng, std::size_t bits) {
  if (bits < 2) throw CryptoError("random_bits: need at least 2 bits");
  const std::size_t bytes = (bits + 7) / 8;
  Bytes raw = rng.generate(bytes);
  const std::size_t top_bit = (bits - 1) % 8;
  raw[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1u);
  raw[0] |= static_cast<std::uint8_t>(1u << top_bit);
  return BigUint::from_bytes_be(raw);
}

namespace {

/// Shared trial-division + decomposition prefix. Returns 0 when composite,
/// 1 when certainly prime (small), 2 when Miller–Rabin is needed; fills
/// `d` and `r` with n - 1 = d * 2^r in the latter case.
int mr_prepare(const BigUint& n, BigUint& d, std::size_t& r) {
  if (n < BigUint(2)) return 0;
  for (std::uint64_t p : kSmallPrimes) {
    if (mod_u64(n, p) == 0) return n == BigUint(p) ? 1 : 0;
  }
  const BigUint n_minus_1 = n - BigUint(1);
  d = n_minus_1;
  r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  return 2;
}

}  // namespace

bool is_probable_prime_fixed(const BigUint& n) {
  BigUint d;
  std::size_t r = 0;
  const int state = mr_prepare(n, d, r);
  if (state != 2) return state == 1;
  const Montgomery mont(n);
  for (std::uint64_t w : kDeterministicWitnesses) {
    if (!mr_round(n, BigUint(w), d, r, mont)) return false;
  }
  return true;
}

bool is_probable_prime(const BigUint& n, crypto::Drbg& rng, int rounds) {
  BigUint d;
  std::size_t r = 0;
  const int state = mr_prepare(n, d, r);
  if (state != 2) return state == 1;
  const Montgomery mont(n);

  if (n.bit_length() <= 64) {
    for (std::uint64_t w : kDeterministicWitnesses) {
      if (!mr_round(n, BigUint(w), d, r, mont)) return false;
    }
    return true;
  }

  for (std::uint64_t w : kDeterministicWitnesses) {
    if (!mr_round(n, BigUint(w), d, r, mont)) return false;
  }
  for (int i = 0; i < rounds; ++i) {
    // Witness in [2, n-2].
    const BigUint a =
        random_below(rng, n - BigUint(3)) + BigUint(2);
    if (!mr_round(n, a, d, r, mont)) return false;
  }
  return true;
}

BigUint generate_prime(crypto::Drbg& rng, std::size_t bits, int rounds) {
  for (;;) {
    BigUint candidate = random_bits(rng, bits);
    if (!candidate.is_odd()) candidate.add_u64(1);
    if (candidate.bit_length() != bits) continue;  // add_u64 overflowed width
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

BigUint generate_safe_prime(crypto::Drbg& rng, std::size_t bits, int rounds) {
  if (bits < 4) throw CryptoError("generate_safe_prime: width too small");
  for (;;) {
    const BigUint q = generate_prime(rng, bits - 1, rounds);
    BigUint p = (q << 1) + BigUint(1);
    if (p.bit_length() != bits) continue;
    // Cheap prefilter: p mod small primes.
    bool divisible = false;
    for (std::uint64_t sp : kSmallPrimes) {
      if (mod_u64(p, sp) == 0 && p != BigUint(sp)) {
        divisible = true;
        break;
      }
    }
    if (divisible) continue;
    if (is_probable_prime(p, rng, rounds)) return p;
  }
}

}  // namespace slicer::bigint

// H_prime: deterministic prime representatives (Barić–Pfitzmann style).
//
// Maps arbitrary bytes to a prime of a fixed bit width by hashing with an
// incrementing counter until the masked digest is prime. Every party — data
// owner, cloud, and the verifying smart contract — recomputes the same prime
// from the same bytes, which is what lets the blockchain rebuild the
// accumulator element from (search token, result hash) alone.
#pragma once

#include <cstdint>

#include "bigint/biguint.hpp"
#include "common/bytes.hpp"

namespace slicer::adscrypto {

/// Default width of prime representatives. 64 bits keeps accumulator
/// exponents small; collision resistance at this width is adequate for the
/// reproduction (see DESIGN.md §5) and the width is configurable.
inline constexpr std::size_t kDefaultPrimeBits = 64;

/// Deterministically derives a `bits`-wide prime from `data`.
/// The top bit is forced so results always have exactly `bits` bits.
/// Throws CryptoError if `bits` < 16 or > 256.
bigint::BigUint hash_to_prime(BytesView data,
                              std::size_t bits = kDefaultPrimeBits);

/// Prime plus the counter value that produced it. Provers ship the counter
/// so that on-chain verifiers re-derive the prime with ONE hash and ONE
/// primality check instead of replaying the whole search (see
/// chain/slicer_contract.cpp for the soundness argument).
struct PrimeWithCounter {
  bigint::BigUint prime;
  std::uint64_t counter = 0;
};
PrimeWithCounter hash_to_prime_counted(BytesView data,
                                       std::size_t bits = kDefaultPrimeBits);

/// Re-derives the candidate at a given counter (no primality search). The
/// result has the forced width/oddness shaping but is NOT checked for
/// primality — the verifier must check it.
bigint::BigUint hash_to_prime_candidate(BytesView data, std::uint64_t counter,
                                        std::size_t bits = kDefaultPrimeBits);

}  // namespace slicer::adscrypto

// H_prime: deterministic prime representatives (Barić–Pfitzmann style).
//
// Maps arbitrary bytes to a prime of a fixed bit width by hashing with an
// incrementing counter until the masked digest is prime. Every party — data
// owner, cloud, and the verifying smart contract — recomputes the same prime
// from the same bytes, which is what lets the blockchain rebuild the
// accumulator element from (search token, result hash) alone.
#pragma once

#include <cstdint>

#include "bigint/biguint.hpp"
#include "common/bytes.hpp"

namespace slicer::adscrypto {

/// Default width of prime representatives. 64 bits keeps accumulator
/// exponents small; collision resistance at this width is adequate for the
/// reproduction (see DESIGN.md §5) and the width is configurable.
inline constexpr std::size_t kDefaultPrimeBits = 64;

/// Deterministically derives a `bits`-wide prime from `data`.
/// The top bit is forced so results always have exactly `bits` bits.
/// Throws CryptoError if `bits` < 16 or > 256.
bigint::BigUint hash_to_prime(BytesView data,
                              std::size_t bits = kDefaultPrimeBits);

/// Prime plus the counter value that produced it. Provers ship the counter
/// so that on-chain verifiers re-derive the prime with ONE hash and ONE
/// primality check instead of replaying the whole search (see
/// chain/slicer_contract.cpp for the soundness argument).
struct PrimeWithCounter {
  bigint::BigUint prime;
  std::uint64_t counter = 0;
};
PrimeWithCounter hash_to_prime_counted(BytesView data,
                                       std::size_t bits = kDefaultPrimeBits);

/// Re-derives the candidate at a given counter (no primality search). The
/// result has the forced width/oddness shaping but is NOT checked for
/// primality — the verifier must check it.
bigint::BigUint hash_to_prime_candidate(BytesView data, std::uint64_t counter,
                                        std::size_t bits = kDefaultPrimeBits);

/// Reference search without the trial-division sieve, the hoisted SHA-256
/// midstate, or the memo cache: one full hash and one full Miller–Rabin
/// run per counter, exactly like the original implementation. Kept so
/// tests and benchmarks can assert the fast path returns the identical
/// (prime, counter) and measure what the filters buy.
PrimeWithCounter hash_to_prime_counted_unsieved(
    BytesView data, std::size_t bits = kDefaultPrimeBits);

// -- Prime memo cache -------------------------------------------------------
//
// The same (data, bits) pair recurs across the protocol: the owner derives
// the prime at Build, the cloud re-derives it at Search (prove), and the
// verifier/contract again at Verify. hash_to_prime[_counted] therefore
// memoizes results in one process-wide bounded map; the functions below
// expose its state for tests and benchmarks.

/// Entry cap. At ~100 bytes/entry the cache tops out around 6 MB; on
/// overflow it is cleared wholesale (generational reset) rather than
/// LRU-evicted — the next Build simply re-warms it (DESIGN.md §3d).
inline constexpr std::size_t kPrimeCacheMaxEntries = std::size_t{1} << 16;

struct PrimeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t entries = 0;
};
PrimeCacheStats prime_cache_stats();

/// Empties the cache and zeroes the counters (benchmarks separate cold and
/// warm runs with this).
void prime_cache_clear();

}  // namespace slicer::adscrypto

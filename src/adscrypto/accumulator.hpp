// RSA accumulator (Li–Li–Xue / Barić–Pfitzmann style) with membership
// witnesses.
//
// This is the authenticated data structure of Slicer: the data owner
// accumulates one prime representative per (search token, result-set hash)
// pair, publishes the accumulation value Ac to the blockchain, and hands the
// prime list X to the cloud. At query time the cloud produces a constant-size
// membership witness; the smart contract checks `witness^x == Ac (mod n)`.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bigint/biguint.hpp"
#include "bigint/montgomery.hpp"
#include "crypto/drbg.hpp"

namespace slicer::adscrypto {

/// Public accumulator parameters: modulus n = p·q and a generator of QR_n.
struct AccumulatorParams {
  bigint::BigUint modulus;
  bigint::BigUint generator;

  Bytes serialize() const;
  static AccumulatorParams deserialize(BytesView data);
};

/// The factorization of n. Only the data owner ever holds it; it enables the
/// O(1)-exponent accumulation fast path (exponent reduced mod φ(n)).
struct AccumulatorTrapdoor {
  bigint::BigUint p;
  bigint::BigUint q;

  bigint::BigUint phi() const;
};

/// RSA accumulator bound to fixed parameters.
class RsaAccumulator {
 public:
  /// `use_fixed_base` keeps the comb table for g^e exponentiations
  /// (default). Disabling it routes everything through the generic sliding
  /// window — only benchmarks do this, to quantify the table's speedup.
  explicit RsaAccumulator(AccumulatorParams params, bool use_fixed_base = true);

  /// Generates fresh parameters. `safe_primes` selects genuine safe primes
  /// (slow for large widths — intended for offline setup) versus ordinary
  /// random primes (fast; adequate for tests and benchmarks).
  static std::pair<AccumulatorParams, AccumulatorTrapdoor> setup(
      crypto::Drbg& rng, std::size_t modulus_bits, bool safe_primes = false);

  /// Embedded deterministic 1024-bit parameters (generated once with
  /// `setup`; see params.cpp) so benchmarks skip key generation.
  static AccumulatorParams default_params_1024();

  const AccumulatorParams& params() const { return params_; }

  /// Ac = g^(∏ x) mod n — the public (trapdoor-free) path the cloud uses to
  /// check a received accumulator value.
  bigint::BigUint accumulate(std::span<const bigint::BigUint> primes) const;

  /// Owner fast path: reduces the exponent mod φ(n) first.
  bigint::BigUint accumulate(std::span<const bigint::BigUint> primes,
                             const AccumulatorTrapdoor& trapdoor) const;

  /// Membership witness for primes[index]: g^(∏_{j≠index} x_j) mod n.
  /// This is the per-query path the paper benchmarks as "VO generation".
  bigint::BigUint witness(std::span<const bigint::BigUint> primes,
                          std::size_t index) const;

  /// All witnesses at once via the root-factor (product-tree) algorithm —
  /// O(|X| log |X|) total instead of O(|X|) per witness. Used by the cloud
  /// to amortize VO generation across queries (ablation C in DESIGN.md).
  std::vector<bigint::BigUint> all_witnesses(
      std::span<const bigint::BigUint> primes) const;

  /// Same root-factor batch, but relative to an arbitrary base B:
  /// out[i] = B^(∏_{j≠i} x_j) mod n. With B = g this is the plain
  /// all_witnesses; with B = the pre-batch accumulator value Ac_old it
  /// yields the witnesses of a freshly inserted batch against the updated
  /// accumulator (Ac_old already carries every older prime in its
  /// exponent) — the incremental-refresh path of the sharded accumulator.
  std::vector<bigint::BigUint> all_witnesses(
      std::span<const bigint::BigUint> primes,
      const bigint::BigUint& base) const;

  /// g^exponent mod n through the fixed-base comb table when enabled (the
  /// generic sliding window otherwise). Public so incremental maintainers
  /// holding a running exponent (the sharded accumulator's trapdoor path)
  /// hit the same fast path as accumulate().
  bigint::BigUint pow_generator(const bigint::BigUint& exponent) const {
    return pow_g(exponent);
  }

  /// Verifies witness^element == Ac (mod n). This is exactly what the smart
  /// contract executes on chain.
  static bool verify(const AccumulatorParams& params, const bigint::BigUint& ac,
                     const bigint::BigUint& element,
                     const bigint::BigUint& witness);

  /// Same check against a prebuilt Montgomery context bound to the
  /// accumulator modulus — lets a verifier amortize the context (R² mod n)
  /// across the many replies of one query instead of re-deriving it per
  /// witness (see core/verify.cpp).
  static bool verify(const bigint::Montgomery& mont, const bigint::BigUint& ac,
                     const bigint::BigUint& element,
                     const bigint::BigUint& witness);

  /// Non-membership witness (Li–Li–Xue universal accumulator, the paper's
  /// ADS reference [28]): for prime x ∉ X, a pair (a, d) with
  /// Ac^a = d^x · g (mod n) and 1 <= a < x, derived from Bézout
  /// coefficients of (∏X, x). Lets a prover show a value was never
  /// accumulated — e.g. certified empty results. Throws CryptoError when
  /// x divides ∏X (i.e. x IS a member).
  struct NonMembershipWitness {
    bigint::BigUint a;
    bigint::BigUint d;
  };
  NonMembershipWitness nonmember_witness(
      std::span<const bigint::BigUint> primes, const bigint::BigUint& x) const;

  /// Verifies a non-membership witness against `ac`.
  static bool verify_nonmember(const AccumulatorParams& params,
                               const bigint::BigUint& ac,
                               const bigint::BigUint& x,
                               const NonMembershipWitness& witness);

 private:
  /// Root-factor recursion over [lo, hi). `base` is in Montgomery form and
  /// already carries every prime outside the range in its exponent; halves
  /// are forked onto the thread pool for large ranges. `scratch` belongs
  /// to the calling thread; forked branches allocate their own. `fixed` is
  /// non-null only at the root, where `base` is still the generator g and
  /// the two half-exponent pows can use the comb table.
  void all_witnesses_rec(std::span<const bigint::BigUint> primes,
                         const bigint::Montgomery::Elem& base, std::size_t lo,
                         std::size_t hi, std::vector<bigint::BigUint>& out,
                         bigint::Montgomery::Scratch& scratch,
                         const bigint::Montgomery::FixedBase* fixed) const;

  /// g^exponent mod n through the comb table when enabled.
  bigint::BigUint pow_g(const bigint::BigUint& exponent) const;

  AccumulatorParams params_;
  bigint::Montgomery mont_;
  /// Comb table for the generator — every membership/non-membership
  /// exponentiation in this class is a power of the same g. Behind a
  /// unique_ptr because the table (with its internal lock) is immovable
  /// while RsaAccumulator itself must stay movable.
  std::unique_ptr<bigint::Montgomery::FixedBase> fixed_g_;
};

/// Balanced product of a range of primes, computed as a bottom-up pairwise
/// reduction (Karatsuba-friendly shape, no deep recursion) with each level
/// parallelized over the process thread pool. Any association of the exact
/// integer product yields the same value, so the result is identical at
/// every thread count.
bigint::BigUint product_tree(std::span<const bigint::BigUint> values);

}  // namespace slicer::adscrypto

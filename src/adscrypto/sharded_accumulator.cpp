#include "adscrypto/sharded_accumulator.hpp"

#include "adscrypto/multiset_hash.hpp"
#include "common/env.hpp"
#include "common/errors.hpp"
#include "common/metrics.hpp"
#include "common/serial.hpp"
#include "common/thread_pool.hpp"

namespace slicer::adscrypto {

using bigint::BigUint;
using bigint::Montgomery;

std::size_t default_shard_count() {
  // 256 shards is already far past the useful range for one process; the
  // clamp keeps a typo from allocating thousands of Montgomery contexts.
  return env::size_knob("SLICER_SHARDS", 1, 1, 256);
}

std::size_t shard_of(const BigUint& x, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  // splitmix64 finalizer over the normalized limbs — the same mix as
  // std::hash<BigUint>, but spelled out so the routing can never drift with
  // a standard-library implementation.
  std::uint64_t h = 0x9e3779b97f4a7c15ull + x.limb_count();
  for (const std::uint64_t limb : x.limbs()) {
    h ^= limb;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
  }
  return static_cast<std::size_t>(h % shard_count);
}

BigUint fold_shard_digests(std::span<const BigUint> values) {
  if (values.empty()) throw CryptoError("fold_shard_digests: no shards");
  // One shard: the digest IS the accumulation value, exactly as before
  // sharding existed — this is what keeps K=1 chains byte-compatible.
  if (values.size() == 1) return values[0];
  MultisetHash::Digest acc = MultisetHash::empty();
  for (std::size_t s = 0; s < values.size(); ++s) {
    Writer w;
    w.u32(static_cast<std::uint32_t>(s));
    w.bytes(values[s].to_bytes_be());
    acc = MultisetHash::add(acc, MultisetHash::hash_element(w.view()));
  }
  return acc;
}

ShardedAccumulator::ShardedAccumulator(AccumulatorParams params,
                                       std::size_t shard_count,
                                       bool use_fixed_base)
    : params_(std::move(params)), mont_(params_.modulus) {
  const std::size_t k = shard_count == 0 ? default_shard_count() : shard_count;
  shards_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) shards_.emplace_back(params_, use_fixed_base);
  primes_.resize(k);
  values_.assign(k, params_.generator);
  exponents_.assign(k, BigUint(1));
}

ShardedAccumulator::Batch ShardedAccumulator::route(
    std::span<const BigUint> xs) {
  Batch batch;
  const std::size_t k = shards_.size();
  batch.routed.resize(k);
  batch.old_values = values_;
  batch.old_counts.resize(k);
  for (std::size_t s = 0; s < k; ++s) batch.old_counts[s] = primes_[s].size();
  batch.empty = xs.empty();
  for (const BigUint& x : xs) {
    const std::size_t s = shard_of(x, k);
    // Overwrite-on-duplicate: a re-inserted element resolves to its newest
    // position, matching the cloud's historical prime_pos_ map semantics.
    index_[x] = Pos{static_cast<std::uint32_t>(s),
                    static_cast<std::uint32_t>(primes_[s].size())};
    batch.routed[s].push_back(x);
    primes_[s].push_back(x);
    ++total_;
  }
  return batch;
}

ShardedAccumulator::Batch ShardedAccumulator::insert(
    std::span<const BigUint> xs) {
  // The sharded insert IS the accumulate step — it records the same
  // histogram the single accumulator's accumulate() fed, so the
  // phase-breakdown schema stays satisfied at every K.
  static metrics::Histogram& accumulate_ns =
      metrics::histogram("adscrypto.accumulator.accumulate_ns");
  static metrics::Counter& batches =
      metrics::counter("adscrypto.sharded.batches");
  const metrics::ScopedTimer timer(accumulate_ns);
  batches.add();
  Batch batch = route(xs);
  if (batch.empty) return batch;
  // Each touched shard raises its value by the routed product — independent
  // slots, so the shards update in parallel (product_tree nests on the pool).
  ThreadPool::instance().parallel_for(shards_.size(), [&](std::size_t s) {
    if (batch.routed[s].empty()) return;
    const BigUint exponent = product_tree(batch.routed[s]);
    values_[s] = mont_.pow(values_[s], exponent);
  });
  exponents_valid_ = false;
  return batch;
}

ShardedAccumulator::Batch ShardedAccumulator::insert(
    std::span<const BigUint> xs, const AccumulatorTrapdoor& trapdoor) {
  static metrics::Histogram& accumulate_ns =
      metrics::histogram("adscrypto.accumulator.accumulate_ns");
  static metrics::Counter& batches =
      metrics::counter("adscrypto.sharded.batches");
  const metrics::ScopedTimer timer(accumulate_ns);
  batches.add();
  Batch batch = route(xs);
  if (batch.empty) return batch;
  const BigUint phi = trapdoor.phi();
  if (!exponents_valid_) {
    // A public insert interleaved earlier; refold every shard's exponent
    // from its full prime list (the modular product is order-independent,
    // so this lands on the same value a pure-trapdoor history would hold).
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      BigUint e(1);
      for (const BigUint& x : primes_[s]) e = (e * x) % phi;
      exponents_[s] = std::move(e);
    }
    exponents_valid_ = true;
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s)
      for (const BigUint& x : batch.routed[s])
        exponents_[s] = (exponents_[s] * x) % phi;
  }
  ThreadPool::instance().parallel_for(shards_.size(), [&](std::size_t s) {
    if (batch.routed[s].empty()) return;
    values_[s] = shards_[s].pow_generator(exponents_[s]);
  });
  return batch;
}

ShardedAccumulator::Batch ShardedAccumulator::insert_with_values(
    std::span<const BigUint> xs, std::span<const BigUint> values_after) {
  if (values_after.size() != shards_.size())
    throw ProtocolError("shard value count mismatch in update");
  Batch batch = route(xs);
  values_.assign(values_after.begin(), values_after.end());
  exponents_valid_ = false;
  return batch;
}

void ShardedAccumulator::rebuild(std::span<const BigUint> primes,
                                 const AccumulatorTrapdoor* trapdoor) {
  if (total_ != 0) throw ProtocolError("rebuild on a non-empty accumulator");
  route(primes);
  if (trapdoor != nullptr) {
    const BigUint phi = trapdoor->phi();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      BigUint e(1);
      for (const BigUint& x : primes_[s]) e = (e * x) % phi;
      exponents_[s] = std::move(e);
    }
    ThreadPool::instance().parallel_for(shards_.size(), [&](std::size_t s) {
      if (!primes_[s].empty())
        values_[s] = shards_[s].pow_generator(exponents_[s]);
    });
    exponents_valid_ = true;
  } else {
    ThreadPool::instance().parallel_for(shards_.size(), [&](std::size_t s) {
      if (!primes_[s].empty())
        values_[s] = mont_.pow(params_.generator, product_tree(primes_[s]));
    });
    exponents_valid_ = false;
  }
}

std::optional<ShardedAccumulator::Pos> ShardedAccumulator::find(
    const BigUint& x) const {
  const auto it = index_.find(x);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::span<const BigUint> ShardedAccumulator::shard_primes(
    std::size_t shard) const {
  return primes_.at(shard);
}

const BigUint& ShardedAccumulator::shard_value(std::size_t shard) const {
  return values_.at(shard);
}

BigUint ShardedAccumulator::witness(Pos pos) const {
  if (pos.shard >= shards_.size() ||
      pos.index >= primes_[pos.shard].size())
    throw CryptoError("witness position out of range");
  return shards_[pos.shard].witness(primes_[pos.shard], pos.index);
}

std::vector<std::vector<BigUint>> ShardedAccumulator::all_witnesses() const {
  std::vector<std::vector<BigUint>> out(shards_.size());
  // Serial over shards: the root-factor recursion inside each shard already
  // saturates the pool, and shard sizes are skewed enough that an outer
  // parallel_for would just serialize on the largest shard anyway.
  for (std::size_t s = 0; s < shards_.size(); ++s)
    out[s] = shards_[s].all_witnesses(primes_[s]);
  return out;
}

void ShardedAccumulator::refresh_witnesses(
    std::vector<std::vector<BigUint>>& caches, const Batch& batch) const {
  static metrics::Histogram& refresh_ns =
      metrics::histogram("adscrypto.sharded.refresh_ns");
  const metrics::ScopedTimer timer(refresh_ns);
  if (caches.size() != shards_.size() ||
      batch.routed.size() != shards_.size())
    throw CryptoError("witness cache shard mismatch");
  ThreadPool& pool = ThreadPool::instance();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<BigUint>& routed = batch.routed[s];
    if (routed.empty()) continue;
    if (caches[s].size() != batch.old_counts[s])
      throw CryptoError("witness cache size mismatch");
    // Every pre-batch witness owes exactly the routed product in its
    // exponent: w' = w^P. The exponent is |routed| 64-bit primes — batch
    // cost, not index cost.
    const BigUint product = product_tree(routed);
    pool.parallel_for(caches[s].size(), [&](std::size_t i) {
      caches[s][i] = mont_.pow(caches[s][i], product);
    });
    // The batch's own witnesses, based at the pre-batch shard value: that
    // value already carries every older prime in its exponent, so the
    // root-factor recursion over just the routed primes completes each
    // exponent to "everything except me".
    std::vector<BigUint> fresh =
        shards_[s].all_witnesses(routed, batch.old_values[s]);
    caches[s].insert(caches[s].end(),
                     std::make_move_iterator(fresh.begin()),
                     std::make_move_iterator(fresh.end()));
  }
}

namespace {

/// Shamir's trick: given w1^e1 == A and w2^e2 == A with gcd(e1, e2) == 1,
/// pick Bézout coefficients a·e1 + b·e2 == 1 (signed) and form
/// W = w1^b · w2^a; then W^(e1·e2) = A^(b·e2) · A^(a·e1) = A. A negative
/// coefficient exponentiates the witness's modular inverse — witnesses are
/// units of Z_n* (powers of g), so the inverse always exists for an
/// RSA modulus n whose factorization is unknown.
BigUint shamir_combine(const Montgomery& mont, const BigUint& w1,
                       const BigUint& e1, const BigUint& w2,
                       const BigUint& e2) {
  const BigUint::ExtGcd bez = BigUint::ext_gcd(e1, e2);
  if (!(bez.gcd == BigUint(1)))
    throw CryptoError("aggregate_witnesses: exponents not coprime");
  const BigUint& n = mont.modulus();
  const auto pow_signed = [&](const BigUint& base, const BigUint& e,
                              bool negative) {
    return mont.pow(negative ? BigUint::mod_inverse(base, n) : base, e);
  };
  return BigUint::mul_mod(pow_signed(w1, bez.y, bez.y_negative),
                          pow_signed(w2, bez.x, bez.x_negative), n);
}

}  // namespace

BigUint ShardedAccumulator::aggregate_witnesses(
    const Montgomery& mont, std::span<const BigUint> elements,
    std::span<const BigUint> witnesses) {
  static metrics::Histogram& aggregate_ns =
      metrics::histogram("adscrypto.sharded.aggregate_ns");
  const metrics::ScopedTimer timer(aggregate_ns);
  if (elements.empty() || elements.size() != witnesses.size())
    throw CryptoError("aggregate_witnesses: element/witness size mismatch");
  // Pairwise tree fold: each level halves the list; a pair's combined
  // exponent is the exact integer product, so every ext_gcd below sees the
  // true (coprime) exponents of its two operands.
  std::vector<BigUint> w(witnesses.begin(), witnesses.end());
  std::vector<BigUint> e(elements.begin(), elements.end());
  while (w.size() > 1) {
    std::vector<BigUint> next_w, next_e;
    next_w.reserve((w.size() + 1) / 2);
    next_e.reserve((w.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < w.size(); i += 2) {
      next_w.push_back(shamir_combine(mont, w[i], e[i], w[i + 1], e[i + 1]));
      next_e.push_back(e[i] * e[i + 1]);
    }
    if (w.size() % 2 != 0) {
      next_w.push_back(std::move(w.back()));
      next_e.push_back(std::move(e.back()));
    }
    w = std::move(next_w);
    e = std::move(next_e);
  }
  return w.front();
}

bool ShardedAccumulator::verify_aggregate(
    const Montgomery& mont, std::span<const BigUint> shard_values,
    std::size_t shard, std::span<const BigUint> elements,
    const BigUint& witness) {
  static metrics::Counter& verifies =
      metrics::counter("adscrypto.sharded.aggregate_verifies");
  verifies.add();
  if (shard >= shard_values.size() || elements.empty()) return false;
  if (witness.is_zero() || witness >= mont.modulus()) return false;
  return mont.pow(witness, product_tree(elements)) == shard_values[shard];
}

bool ShardedAccumulator::verify(const AccumulatorParams& params,
                                std::span<const BigUint> shard_values,
                                const BigUint& element,
                                const BigUint& witness) {
  const Montgomery mont(params.modulus);
  return verify(mont, shard_values, element, witness);
}

bool ShardedAccumulator::verify(const Montgomery& mont,
                                std::span<const BigUint> shard_values,
                                const BigUint& element,
                                const BigUint& witness) {
  if (shard_values.empty()) return false;
  const std::size_t s = shard_of(element, shard_values.size());
  return RsaAccumulator::verify(mont, shard_values[s], element, witness);
}

}  // namespace slicer::adscrypto

// Embedded deterministic 1024-bit parameters for benchmarks and examples.
//
// Generated once with this library's own `setup`/`keygen` (tools/gen_params)
// so that benchmark runs skip multi-second key generation. Production
// deployments must generate fresh parameters offline — including the
// safe-prime accumulator setup — and keep the trapdoor secret key with the
// data owner only.
#pragma once

#include "adscrypto/accumulator.hpp"
#include "adscrypto/trapdoor.hpp"

namespace slicer::adscrypto {

/// 1024-bit RSA accumulator parameters (modulus from two 512-bit safe-prime
/// candidates; see params.cpp for provenance).
const AccumulatorParams& default_accumulator_params();

/// 1024-bit RSA trapdoor-permutation key pair. The secret key is embedded
/// deliberately: benchmarks model the data owner, who holds it.
const TrapdoorPublicKey& default_trapdoor_public_key();
const TrapdoorSecretKey& default_trapdoor_secret_key();

}  // namespace slicer::adscrypto

#include "adscrypto/params.hpp"

namespace slicer::adscrypto {

using bigint::BigUint;

// Provenance: tools/gen_params.cpp, DRBG seed "slicer-embedded-params-v1",
// RsaAccumulator::setup(rng, 1024, /*safe_primes=*/true) followed by
// TrapdoorPermutation::keygen(rng, 1024). The accumulator factorization was
// discarded after generation; the trapdoor secret key is embedded because
// benchmarks and examples model the data owner, who legitimately holds it.

const AccumulatorParams& default_accumulator_params() {
  static const AccumulatorParams params{
      BigUint::from_hex(
          "640e3867947f1d14706cd08afb856de28912cb5d407ef32ae8b17e84f15fcdd1"
          "7f566e6ce85095bc28d7de76d473dec0c9efe012e0227b0d4f2c4ce930d5969b"
          "627c1b32641380c80073e5c72b0b561eab022124a5ae187a124af424e6d9a19a"
          "3c30fc97b9e1be16737a91e065e362c78480d7b56ebf591ee2bebc5fbe6f8aa1"),
      BigUint::from_hex(
          "23c117e5935656bb03a79279460105d466682034dfffd17629b19ec361c2781d"
          "25ed7a8145054d2b309df1a9cdb650a28b4433832ed72cca1d46b288b78fec8e"
          "638d33b58fb6e04aaf40c8b83f99701c8e0900b4c308ec61b6b48240915c15d4"
          "6ee163b489672db0732082e54e68a65ccb1d76bdf3ccf198394bd707331faaa4")};
  return params;
}

namespace {
const BigUint& trapdoor_modulus() {
  static const BigUint n = BigUint::from_hex(
      "afa62260c888bd6021a4b43d65a56e9d0bb18012a4c0d9bd7c7aedf7972bb08e"
      "5d991d31d058889086568a8d9202746c7a20aad7143fa838e92ec42002148627"
      "f7ed0659a9d1134050c66915330ad91898bdd7c9cb6f453ef4ce24228269c7f6"
      "4ad3b6acfcd1e82e310e5bf230abe308eff0ffa0fd436ec78eb4c3398ce25241");
  return n;
}
}  // namespace

const TrapdoorPublicKey& default_trapdoor_public_key() {
  static const TrapdoorPublicKey pk{trapdoor_modulus(), BigUint(65537)};
  return pk;
}

const TrapdoorSecretKey& default_trapdoor_secret_key() {
  static const TrapdoorSecretKey sk{
      trapdoor_modulus(),
      BigUint::from_hex(
          "9413596e00008eadc90f01c7b4b6373efbc9a2af94e6e36903d4da625cb5bf3c"
          "f5990bec9fb8d3400b904f73b3c0900797198d0c8e8c6fb3b298f34c0c94e2d6"
          "ce2761d8f0a5520351877e131f39eda74e656c29d86ea2072f2e0557b66ffd38"
          "2db4862713a8a02b85db003b444510aff0ac91413b508abdb43510d7e3e69015")};
  return sk;
}

}  // namespace slicer::adscrypto

// MSet-Mu-Hash multiset hash (Clarke et al., ASIACRYPT 2003).
//
//   H(M) = ∏_{b ∈ M} H_q(b)  over GF(q)*
//
// Incremental (`add`), order-independent, and multiset-collision-resistant
// under the discrete-log assumption in GF(q)*. Slicer hashes each keyword's
// encrypted result multiset with it; the smart contract recomputes the same
// digest from the returned results during public verification.
#pragma once

#include <span>

#include "bigint/biguint.hpp"
#include "common/bytes.hpp"

namespace slicer::adscrypto {

/// Multiset hash over a fixed 256-bit prime field.
class MultisetHash {
 public:
  /// Digest of a multiset: an element of GF(q)*. The empty multiset hashes
  /// to the multiplicative identity.
  using Digest = bigint::BigUint;

  /// The field prime q (the secp256k1 base-field prime).
  static const bigint::BigUint& field_prime();

  /// H(∅) = 1.
  static Digest empty();

  /// Hash of a single element: H_q(elem) ∈ [1, q-1].
  static Digest hash_element(BytesView elem);

  /// Combine: H(M ∪ N) = H(M) · H(N) mod q.
  static Digest add(const Digest& a, const Digest& b);

  /// Removes one occurrence of an element hash (multiplies by its inverse).
  /// Used by the dual-instance deletion extension.
  static Digest remove(const Digest& acc, const Digest& element_hash);

  /// Convenience: hash a whole multiset of byte strings.
  static Digest hash_multiset(std::span<const Bytes> elements);

  /// Fixed-width serialization of a digest (32 bytes, big-endian).
  static Bytes serialize(const Digest& d);
  static Digest deserialize(BytesView data);
};

}  // namespace slicer::adscrypto

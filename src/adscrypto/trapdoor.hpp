// RSA trapdoor permutation π over Z_n*.
//
// Slicer's forward security (Bost's Σοφος technique): each keyword carries a
// chain of trapdoors t_j → t_{j-1} = π_pk(t_j). The data owner walks the
// chain *backwards* with the secret key (t_{j+1} = π_sk⁻¹(t_j)) at insertion
// time; the cloud can only walk it forward from the newest trapdoor revealed
// by a search token, so pre-search insertions stay unlinkable.
#pragma once

#include <utility>

#include "bigint/biguint.hpp"
#include "bigint/montgomery.hpp"
#include "crypto/drbg.hpp"

namespace slicer::adscrypto {

/// Public half: (n, e). Held by the cloud.
struct TrapdoorPublicKey {
  bigint::BigUint n;
  bigint::BigUint e;

  Bytes serialize() const;
  static TrapdoorPublicKey deserialize(BytesView data);
};

/// Secret half: (n, d). Held by the data owner only.
struct TrapdoorSecretKey {
  bigint::BigUint n;
  bigint::BigUint d;
};

/// RSA trapdoor permutation with fixed-width byte-level domain helpers.
class TrapdoorPermutation {
 public:
  /// Generates an RSA key pair with e = 65537.
  static std::pair<TrapdoorPublicKey, TrapdoorSecretKey> keygen(
      crypto::Drbg& rng, std::size_t modulus_bits);

  /// Binds to a public key for forward evaluation.
  explicit TrapdoorPermutation(TrapdoorPublicKey pk);

  const TrapdoorPublicKey& public_key() const { return pk_; }

  /// Byte width of a serialized trapdoor (the modulus width).
  std::size_t trapdoor_width() const { return width_; }

  /// π_pk(x) = x^e mod n (cheap: e = 65537).
  bigint::BigUint forward(const bigint::BigUint& x) const;

  /// π_sk⁻¹(y) = y^d mod n. Requires the secret key.
  bigint::BigUint inverse(const TrapdoorSecretKey& sk,
                          const bigint::BigUint& y) const;

  /// Samples a random trapdoor in [2, n).
  bigint::BigUint random_trapdoor(crypto::Drbg& rng) const;

  /// Fixed-width big-endian trapdoor codecs (stable across parties).
  Bytes encode(const bigint::BigUint& t) const;
  bigint::BigUint decode(BytesView data) const;

 private:
  TrapdoorPublicKey pk_;
  bigint::Montgomery mont_;
  std::size_t width_;
};

}  // namespace slicer::adscrypto

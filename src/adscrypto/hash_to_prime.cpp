#include "adscrypto/hash_to_prime.hpp"

#include "bigint/primes.hpp"
#include "common/errors.hpp"
#include "crypto/sha256.hpp"

namespace slicer::adscrypto {

bigint::BigUint hash_to_prime_candidate(BytesView data, std::uint64_t counter,
                                        std::size_t bits) {
  if (bits < 16 || bits > 256)
    throw CryptoError("hash_to_prime: width must be in [16, 256]");

  const std::size_t bytes = (bits + 7) / 8;
  crypto::Sha256 ctx;
  ctx.update(str_bytes("slicer.h_prime"));
  ctx.update(data);
  ctx.update(be64(counter));
  const auto digest = ctx.finish();

  Bytes truncated(digest.begin(), digest.begin() + static_cast<long>(bytes));
  // Force exact bit width and oddness.
  const std::size_t top_bit = (bits - 1) % 8;
  truncated[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1u);
  truncated[0] |= static_cast<std::uint8_t>(1u << top_bit);
  truncated[bytes - 1] |= 0x01;
  return bigint::BigUint::from_bytes_be(truncated);
}

PrimeWithCounter hash_to_prime_counted(BytesView data, std::size_t bits) {
  for (std::uint64_t counter = 0;; ++counter) {
    bigint::BigUint candidate = hash_to_prime_candidate(data, counter, bits);
    if (bigint::is_probable_prime_fixed(candidate))
      return PrimeWithCounter{std::move(candidate), counter};
  }
}

bigint::BigUint hash_to_prime(BytesView data, std::size_t bits) {
  return hash_to_prime_counted(data, bits).prime;
}

}  // namespace slicer::adscrypto

#include "adscrypto/hash_to_prime.hpp"

#include <array>
#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "bigint/primes.hpp"
#include "common/errors.hpp"
#include "common/metrics.hpp"
#include "crypto/sha256.hpp"

namespace slicer::adscrypto {

namespace {

void check_bits(std::size_t bits) {
  if (bits < 16 || bits > 256)
    throw CryptoError("hash_to_prime: width must be in [16, 256]");
}

/// Truncates a digest to `bits`, forcing exact width and oddness.
bigint::BigUint shape_candidate(
    const std::array<std::uint8_t, crypto::Sha256::kDigestSize>& digest,
    std::size_t bits) {
  const std::size_t bytes = (bits + 7) / 8;
  Bytes truncated(digest.begin(), digest.begin() + static_cast<long>(bytes));
  const std::size_t top_bit = (bits - 1) % 8;
  truncated[0] &= static_cast<std::uint8_t>((1u << (top_bit + 1)) - 1u);
  truncated[0] |= static_cast<std::uint8_t>(1u << top_bit);
  truncated[bytes - 1] |= 0x01;
  return bigint::BigUint::from_bytes_be(truncated);
}

/// Context with the constant prefix and `data` already absorbed. The
/// per-counter work is then a copy of this midstate plus 8 counter bytes —
/// the prefix+data blocks are compressed exactly once per search, not once
/// per counter.
crypto::Sha256 absorb_prefix(BytesView data) {
  crypto::Sha256 ctx;
  ctx.update(str_bytes("slicer.h_prime"));
  ctx.update(data);
  return ctx;
}

bigint::BigUint candidate_from(const crypto::Sha256& midstate,
                               std::uint64_t counter, std::size_t bits) {
  crypto::Sha256 ctx = midstate;
  std::array<std::uint8_t, 8> ctr;
  for (std::size_t i = 0; i < 8; ++i)
    ctr[i] = static_cast<std::uint8_t>(counter >> (8 * (7 - i)));
  ctx.update(BytesView(ctr.data(), ctr.size()));
  return shape_candidate(ctx.finish(), bits);
}

/// Process-wide memo cache (see the header for the policy). Reads take a
/// shared lock so concurrent Build/Search threads don't serialize on hits.
struct PrimeCache {
  std::shared_mutex mu;
  std::unordered_map<std::string, PrimeWithCounter> map;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

PrimeCache& prime_cache() {
  static PrimeCache cache;
  return cache;
}

std::string cache_key(BytesView data, std::size_t bits) {
  std::string key;
  key.reserve(data.size() + 2);
  key.push_back(static_cast<char>(bits >> 8));
  key.push_back(static_cast<char>(bits & 0xff));
  key.append(reinterpret_cast<const char*>(data.data()), data.size());
  return key;
}

}  // namespace

bigint::BigUint hash_to_prime_candidate(BytesView data, std::uint64_t counter,
                                        std::size_t bits) {
  check_bits(bits);
  return candidate_from(absorb_prefix(data), counter, bits);
}

PrimeWithCounter hash_to_prime_counted(BytesView data, std::size_t bits) {
  // Mirrors of the cache counters plus sieve/Miller–Rabin rates for the
  // observability snapshot (prime_cache_stats() stays the test-facing API).
  static metrics::Counter& m_hits = metrics::counter("adscrypto.h2p.cache_hits");
  static metrics::Counter& m_misses =
      metrics::counter("adscrypto.h2p.cache_misses");
  static metrics::Counter& m_sieve_rejects =
      metrics::counter("adscrypto.h2p.sieve_rejects");
  static metrics::Counter& m_miller_rabin =
      metrics::counter("adscrypto.h2p.miller_rabin_runs");
  static metrics::Histogram& m_search_ns =
      metrics::histogram("adscrypto.h2p.search_ns");

  check_bits(bits);
  PrimeCache& cache = prime_cache();
  std::string key = cache_key(data, bits);
  {
    std::shared_lock lock(cache.mu);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) {
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      m_hits.add();
      return it->second;
    }
  }
  cache.misses.fetch_add(1, std::memory_order_relaxed);
  m_misses.add();

  const metrics::ScopedTimer timer(m_search_ns);
  const crypto::Sha256 midstate = absorb_prefix(data);
  PrimeWithCounter found;
  for (std::uint64_t counter = 0;; ++counter) {
    bigint::BigUint candidate = candidate_from(midstate, counter, bits);
    // Trial division rejects ~90% of candidates for a multiply per sieve
    // prime; only survivors pay for Miller–Rabin. A sieve hit is always a
    // true compositeness witness, so the surviving counter is identical
    // to the unsieved search (asserted in tests).
    if (bigint::has_small_prime_factor(candidate)) {
      m_sieve_rejects.add();
      continue;
    }
    m_miller_rabin.add();
    if (bigint::is_probable_prime_fixed(candidate)) {
      found = PrimeWithCounter{std::move(candidate), counter};
      break;
    }
  }

  {
    std::unique_lock lock(cache.mu);
    if (cache.map.size() >= kPrimeCacheMaxEntries) cache.map.clear();
    cache.map.emplace(std::move(key), found);
  }
  return found;
}

PrimeWithCounter hash_to_prime_counted_unsieved(BytesView data,
                                                std::size_t bits) {
  for (std::uint64_t counter = 0;; ++counter) {
    bigint::BigUint candidate = hash_to_prime_candidate(data, counter, bits);
    if (bigint::is_probable_prime_fixed(candidate))
      return PrimeWithCounter{std::move(candidate), counter};
  }
}

bigint::BigUint hash_to_prime(BytesView data, std::size_t bits) {
  return hash_to_prime_counted(data, bits).prime;
}

PrimeCacheStats prime_cache_stats() {
  PrimeCache& cache = prime_cache();
  std::shared_lock lock(cache.mu);
  return PrimeCacheStats{cache.hits.load(std::memory_order_relaxed),
                         cache.misses.load(std::memory_order_relaxed),
                         cache.map.size()};
}

void prime_cache_clear() {
  PrimeCache& cache = prime_cache();
  std::unique_lock lock(cache.mu);
  cache.map.clear();
  cache.hits.store(0, std::memory_order_relaxed);
  cache.misses.store(0, std::memory_order_relaxed);
}

}  // namespace slicer::adscrypto

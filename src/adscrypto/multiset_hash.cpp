#include "adscrypto/multiset_hash.hpp"

#include "common/errors.hpp"
#include "crypto/sha256.hpp"

namespace slicer::adscrypto {

using bigint::BigUint;

const BigUint& MultisetHash::field_prime() {
  // secp256k1 base-field prime: 2^256 - 2^32 - 977.
  static const BigUint q = BigUint::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  return q;
}

MultisetHash::Digest MultisetHash::empty() { return BigUint(1); }

MultisetHash::Digest MultisetHash::hash_element(BytesView elem) {
  const BigUint& q = field_prime();
  // Expand to 512 bits with two domain-separated SHA-256 calls so the value
  // mod q is statistically uniform, then reject 0 (not in GF(q)*).
  for (std::uint64_t counter = 0;; ++counter) {
    crypto::Sha256 lo_ctx;
    lo_ctx.update(str_bytes("slicer.mset.lo"));
    lo_ctx.update(be64(counter));
    lo_ctx.update(elem);
    const auto lo = lo_ctx.finish();

    crypto::Sha256 hi_ctx;
    hi_ctx.update(str_bytes("slicer.mset.hi"));
    hi_ctx.update(be64(counter));
    hi_ctx.update(elem);
    const auto hi = hi_ctx.finish();

    Bytes wide(hi.begin(), hi.end());
    wide.insert(wide.end(), lo.begin(), lo.end());
    const BigUint value = BigUint::from_bytes_be(wide) % q;
    if (!value.is_zero()) return value;
  }
}

MultisetHash::Digest MultisetHash::add(const Digest& a, const Digest& b) {
  return (a * b) % field_prime();
}

MultisetHash::Digest MultisetHash::remove(const Digest& acc,
                                          const Digest& element_hash) {
  const BigUint inv = BigUint::mod_inverse(element_hash, field_prime());
  return (acc * inv) % field_prime();
}

MultisetHash::Digest MultisetHash::hash_multiset(
    std::span<const Bytes> elements) {
  Digest acc = empty();
  for (const Bytes& e : elements) acc = add(acc, hash_element(e));
  return acc;
}

Bytes MultisetHash::serialize(const Digest& d) { return d.to_bytes_be(32); }

MultisetHash::Digest MultisetHash::deserialize(BytesView data) {
  if (data.size() != 32)
    throw DecodeError("multiset hash digest must be 32 bytes");
  return BigUint::from_bytes_be(data);
}

}  // namespace slicer::adscrypto

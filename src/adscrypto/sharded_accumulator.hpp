// Sharded RSA accumulator: K independent RsaAccumulator shards with a
// deterministic prime→shard routing function and an MSet-Mu-Hash fold of the
// per-shard accumulation values into the single digest published on chain.
//
// Sharding attacks the write-scaling wall: inserting a batch into one global
// accumulator forces every cached witness to absorb the whole batch product
// in its exponent, so refresh cost grows with |batch| per witness. Routing
// primes across K shards shrinks each shard's batch (and therefore each
// refresh exponent) by ~K while the shards update in parallel on the pool.
// K = 1 degenerates to exactly today's single-accumulator behavior — same
// routing (everything to shard 0), same digest (the raw shard value, no
// fold), bit-identical outputs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "adscrypto/accumulator.hpp"
#include "bigint/biguint.hpp"
#include "bigint/montgomery.hpp"

namespace slicer::adscrypto {

/// Shard count from the `SLICER_SHARDS` environment variable (clamped to
/// [1, 256]); 1 when unset or unparsable.
std::size_t default_shard_count();

/// Deterministic shard of element `x` among `shard_count` shards. A
/// splitmix64 finalizer folded over the normalized limb vector — fixed
/// across platforms and processes (std::hash is deliberately NOT used here:
/// routing is protocol-visible, so it must never vary with the standard
/// library). `shard_count <= 1` always routes to shard 0.
std::size_t shard_of(const bigint::BigUint& x, std::size_t shard_count);

/// Folds per-shard accumulation values into the single chain digest. One
/// shard folds to the raw value itself (the legacy single-accumulator
/// digest, preserving K=1 bit-identity); K > 1 folds to the MSet-Mu-Hash of
/// the (shard index, value) pairs, which commits to every shard value and
/// its position while staying one field element on chain.
bigint::BigUint fold_shard_digests(std::span<const bigint::BigUint> values);

/// K RsaAccumulator shards behind one routing/digest facade.
class ShardedAccumulator {
 public:
  /// Location of an element: which shard holds it and at what arrival index
  /// within that shard's prime list.
  struct Pos {
    std::uint32_t shard = 0;
    std::uint32_t index = 0;
  };

  /// What an insert changed — everything the incremental witness refresh
  /// needs to avoid a from-scratch rebuild.
  struct Batch {
    /// New primes routed per shard (arrival order within each shard).
    std::vector<std::vector<bigint::BigUint>> routed;
    /// Per-shard accumulation values BEFORE this batch.
    std::vector<bigint::BigUint> old_values;
    /// Per-shard prime counts BEFORE this batch.
    std::vector<std::size_t> old_counts;
    bool empty = true;
  };

  /// `shard_count` 0 resolves to default_shard_count() (the SLICER_SHARDS
  /// environment knob); `use_fixed_base` is forwarded to every shard.
  explicit ShardedAccumulator(AccumulatorParams params,
                              std::size_t shard_count = 0,
                              bool use_fixed_base = true);

  std::size_t shard_count() const { return shards_.size(); }
  const AccumulatorParams& params() const { return params_; }

  /// Public (trapdoor-free) batch insert: routes `xs`, then raises each
  /// touched shard's value by its routed product — shard-parallel on the
  /// pool. Used by the verifying cloud on snapshot restore and by tests.
  Batch insert(std::span<const bigint::BigUint> xs);

  /// Owner fast path: maintains one running exponent mod φ(n) per shard, so
  /// a batch costs |batch| modular 64-bit multiplies plus one fixed-base
  /// exponentiation per touched shard. The modular product is
  /// order-independent, so the running exponent equals a from-scratch fold
  /// of the shard's whole prime list — bit-identical to re-accumulating.
  Batch insert(std::span<const bigint::BigUint> xs,
               const AccumulatorTrapdoor& trapdoor);

  /// Cloud trust path: routes `xs` and adopts the owner-published per-shard
  /// values verbatim instead of recomputing them. Throws ProtocolError when
  /// `values_after` does not carry exactly one value per shard.
  Batch insert_with_values(std::span<const bigint::BigUint> xs,
                           std::span<const bigint::BigUint> values_after);

  /// Snapshot-restore path: repopulates routing and prime state from a flat
  /// arrival-order prime list and recomputes every shard value — the
  /// trapdoor fold when available, the public product-tree path otherwise.
  /// Throws ProtocolError unless the accumulator is empty.
  void rebuild(std::span<const bigint::BigUint> primes,
               const AccumulatorTrapdoor* trapdoor);

  /// Shard/index of `x`, or nullopt if never inserted. Re-inserted elements
  /// report their latest position (matching the cloud's historical
  /// overwrite-on-duplicate map semantics).
  std::optional<Pos> find(const bigint::BigUint& x) const;

  /// Total primes across all shards.
  std::size_t prime_count() const { return total_; }

  std::span<const bigint::BigUint> shard_primes(std::size_t shard) const;
  const bigint::BigUint& shard_value(std::size_t shard) const;
  const std::vector<bigint::BigUint>& shard_values() const { return values_; }

  /// The published chain digest: fold_shard_digests over current values.
  bigint::BigUint digest() const { return fold_shard_digests(values_); }

  /// On-demand membership witness for the element at `pos`, against its
  /// shard's current value.
  bigint::BigUint witness(Pos pos) const;

  /// From-scratch witness cache: per-shard root-factor batch (the result
  /// the incremental refresh must reproduce).
  std::vector<std::vector<bigint::BigUint>> all_witnesses() const;

  /// Incremental refresh after `batch`: every witness cached before the
  /// batch absorbs the shard's routed product P into its exponent
  /// (w' = w^P — one modexp whose exponent is |routed| primes, not the
  /// whole shard), and the batch's own witnesses are produced by the
  /// root-factor recursion based at the shard's pre-batch value, which
  /// already carries every older prime in its exponent. Value-identical to
  /// all_witnesses() from scratch. `caches` must hold exactly the pre-batch
  /// witnesses (old_counts per shard); throws CryptoError otherwise.
  void refresh_witnesses(std::vector<std::vector<bigint::BigUint>>& caches,
                         const Batch& batch) const;

  /// Folds the membership witnesses of pairwise-distinct elements of ONE
  /// shard into the single aggregate witness of their product (Shamir's
  /// trick, pairwise tree fold): returns W with W^(∏ elements) equal to the
  /// shard's accumulation value — i.e. W = g^(S/∏ elements). Inputs must be
  /// parallel spans of the same nonzero length; elements must be pairwise
  /// coprime (distinct primes), otherwise CryptoError. The fold is pure
  /// group arithmetic on the witnesses — no trapdoor, no shard state — so
  /// the result is order-independent (it is THE ∏-th root of the shard
  /// value in ⟨g⟩).
  static bigint::BigUint aggregate_witnesses(
      const bigint::Montgomery& mont,
      std::span<const bigint::BigUint> elements,
      std::span<const bigint::BigUint> witnesses);

  /// Same fold against this accumulator's own Montgomery context.
  bigint::BigUint aggregate_witnesses(
      std::span<const bigint::BigUint> elements,
      std::span<const bigint::BigUint> witnesses) const {
    return aggregate_witnesses(mont_, elements, witnesses);
  }

  /// Verifies one shard's aggregate witness: W^(∏ elements) == value_s —
  /// a single modexp whose exponent is the product-tree fold of every
  /// query prime the verifier routed to `shard`. `elements` must be
  /// pairwise distinct; an empty element set is rejected (an aggregate
  /// witness must fold at least one prime).
  static bool verify_aggregate(const bigint::Montgomery& mont,
                               std::span<const bigint::BigUint> shard_values,
                               std::size_t shard,
                               std::span<const bigint::BigUint> elements,
                               const bigint::BigUint& witness);

  /// Verifies a membership witness against the shard values: routes
  /// `element` to its shard and checks witness^element == value_s. This is
  /// what the contract and client execute.
  static bool verify(const AccumulatorParams& params,
                     std::span<const bigint::BigUint> shard_values,
                     const bigint::BigUint& element,
                     const bigint::BigUint& witness);

  /// Same, against a caller-amortized Montgomery context.
  static bool verify(const bigint::Montgomery& mont,
                     std::span<const bigint::BigUint> shard_values,
                     const bigint::BigUint& element,
                     const bigint::BigUint& witness);

 private:
  /// Routes `xs` into per-shard lists, appends them to the shard prime
  /// lists and the position index, and captures the pre-batch snapshot.
  Batch route(std::span<const bigint::BigUint> xs);

  AccumulatorParams params_;
  bigint::Montgomery mont_;
  std::vector<RsaAccumulator> shards_;
  /// Per-shard prime lists in arrival order.
  std::vector<std::vector<bigint::BigUint>> primes_;
  /// Per-shard accumulation values Ac_s (generator when empty).
  std::vector<bigint::BigUint> values_;
  /// Owner path: per-shard running exponents mod φ(n). Only meaningful
  /// while every insert so far went through the trapdoor overload;
  /// public/with_values inserts clear the flag and the next trapdoor
  /// insert refolds from the shard prime lists.
  std::vector<bigint::BigUint> exponents_;
  bool exponents_valid_ = true;
  std::unordered_map<bigint::BigUint, Pos> index_;
  std::size_t total_ = 0;
};

}  // namespace slicer::adscrypto

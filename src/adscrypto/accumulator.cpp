#include "adscrypto/accumulator.hpp"

#include <algorithm>

#include "bigint/primes.hpp"
#include "common/errors.hpp"
#include "common/metrics.hpp"
#include "common/serial.hpp"
#include "common/thread_pool.hpp"

namespace slicer::adscrypto {

using bigint::BigUint;
using bigint::Montgomery;

namespace {

/// Ranges at least this wide fork their recursion halves onto the pool;
/// below it the per-task overhead outweighs the subtree's exponentiations.
constexpr std::size_t kWitnessForkThreshold = 8;

}  // namespace

Bytes AccumulatorParams::serialize() const {
  Writer w;
  w.bytes(modulus.to_bytes_be());
  w.bytes(generator.to_bytes_be());
  return std::move(w).take();
}

AccumulatorParams AccumulatorParams::deserialize(BytesView data) {
  Reader r(data);
  AccumulatorParams out;
  out.modulus = BigUint::from_bytes_be(r.bytes());
  out.generator = BigUint::from_bytes_be(r.bytes());
  r.expect_end();
  return out;
}

BigUint AccumulatorTrapdoor::phi() const {
  return (p - BigUint(1)) * (q - BigUint(1));
}

RsaAccumulator::RsaAccumulator(AccumulatorParams params, bool use_fixed_base)
    : params_(std::move(params)), mont_(params_.modulus) {
  if (params_.generator.is_zero() || params_.generator.is_one() ||
      params_.generator >= params_.modulus)
    throw CryptoError("accumulator generator out of range");
  if (use_fixed_base)
    fixed_g_ = std::make_unique<Montgomery::FixedBase>(mont_,
                                                       params_.generator);
}

BigUint RsaAccumulator::pow_g(const BigUint& exponent) const {
  // Fixed-base comb hits vs generic sliding-window falls: the ratio is the
  // paper-facing evidence that accumulator exponentiations stay on the
  // fast path (DESIGN.md §3d).
  static metrics::Counter& fixed_base_pows =
      metrics::counter("adscrypto.accumulator.fixed_base_pows");
  static metrics::Counter& generic_pows =
      metrics::counter("adscrypto.accumulator.generic_pows");
  Montgomery::Scratch scratch;
  if (fixed_g_) {
    fixed_base_pows.add();
    return fixed_g_->pow(exponent, scratch);
  }
  generic_pows.add();
  return mont_.pow(params_.generator, exponent, scratch);
}

std::pair<AccumulatorParams, AccumulatorTrapdoor> RsaAccumulator::setup(
    crypto::Drbg& rng, std::size_t modulus_bits, bool safe_primes) {
  if (modulus_bits < 32)
    throw CryptoError("accumulator modulus too small");
  const std::size_t half = modulus_bits / 2;

  BigUint p, q;
  do {
    p = safe_primes ? bigint::generate_safe_prime(rng, half)
                    : bigint::generate_prime(rng, half);
    q = safe_primes ? bigint::generate_safe_prime(rng, modulus_bits - half)
                    : bigint::generate_prime(rng, modulus_bits - half);
  } while (p == q);

  const BigUint n = p * q;

  // Generator of QR_n: square a random unit. The square of a uniform unit is
  // uniform over QR_n; rejecting 1 (and 0) keeps it a generator with
  // overwhelming probability for safe-prime moduli.
  const bigint::Montgomery mont(n);
  BigUint g;
  do {
    const BigUint a = bigint::random_below(rng, n);
    g = mont.mul(a, a);
  } while (g.is_zero() || g.is_one());

  return {AccumulatorParams{n, g}, AccumulatorTrapdoor{p, q}};
}

BigUint RsaAccumulator::accumulate(
    std::span<const BigUint> primes) const {
  static metrics::Histogram& accumulate_ns =
      metrics::histogram("adscrypto.accumulator.accumulate_ns");
  const metrics::ScopedTimer timer(accumulate_ns);
  if (primes.empty()) return params_.generator;
  const BigUint exponent = product_tree(primes);
  return pow_g(exponent);
}

BigUint RsaAccumulator::accumulate(std::span<const BigUint> primes,
                                   const AccumulatorTrapdoor& trapdoor) const {
  static metrics::Histogram& accumulate_ns =
      metrics::histogram("adscrypto.accumulator.accumulate_ns");
  const metrics::ScopedTimer timer(accumulate_ns);
  if (primes.empty()) return params_.generator;
  const BigUint phi = trapdoor.phi();
  BigUint exponent(1);
  for (const BigUint& x : primes) exponent = (exponent * x) % phi;
  return pow_g(exponent);
}

BigUint RsaAccumulator::witness(std::span<const BigUint> primes,
                                std::size_t index) const {
  static metrics::Histogram& witness_ns =
      metrics::histogram("adscrypto.accumulator.witness_ns");
  const metrics::ScopedTimer timer(witness_ns);
  if (index >= primes.size())
    throw CryptoError("witness index out of range");
  // Exponent = product of all primes except primes[index], assembled from
  // the two balanced sub-products around the hole.
  const BigUint left = product_tree(primes.subspan(0, index));
  const BigUint right = product_tree(primes.subspan(index + 1));
  return pow_g(left * right);
}

void RsaAccumulator::all_witnesses_rec(std::span<const BigUint> primes,
                                       const Montgomery::Elem& base,
                                       std::size_t lo, std::size_t hi,
                                       std::vector<BigUint>& out,
                                       Montgomery::Scratch& scratch,
                                       const Montgomery::FixedBase* fixed) const {
  if (hi - lo == 1) {
    out[lo] = mont_.from_mont(base, scratch);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  const BigUint prod_left = product_tree(primes.subspan(lo, mid - lo));
  const BigUint prod_right = product_tree(primes.subspan(mid, hi - mid));

  // Left half still owes the right half's primes in its exponent, and vice
  // versa — the classic root-factor recursion. The base stays in Montgomery
  // form across every level; only the leaves convert back. At the root the
  // base is still g, so the two half-exponent pows go through the comb
  // table; below that the bases are derived values and use the generic
  // sliding window.
  ThreadPool& pool = ThreadPool::instance();
  const bool fork = !pool.is_serial() && hi - lo >= kWitnessForkThreshold;

  const auto half_pow = [&](const BigUint& exponent, Montgomery::Elem& dst,
                            Montgomery::Scratch& s) {
    if (fixed != nullptr) {
      fixed->pow_mont(exponent, dst, s);
    } else {
      mont_.pow_mont(base, exponent, dst, s);
    }
  };

  Montgomery::Elem left_base, right_base;
  if (fork) {
    // The two half-exponent pows sit on the critical path — fork them too.
    pool.invoke2(
        [&] {
          Montgomery::Scratch s;
          half_pow(prod_right, left_base, s);
        },
        [&] {
          Montgomery::Scratch s;
          half_pow(prod_left, right_base, s);
        });
    pool.invoke2(
        [&] {
          Montgomery::Scratch s;
          all_witnesses_rec(primes, left_base, lo, mid, out, s, nullptr);
        },
        [&] {
          Montgomery::Scratch s;
          all_witnesses_rec(primes, right_base, mid, hi, out, s, nullptr);
        });
  } else {
    half_pow(prod_right, left_base, scratch);
    half_pow(prod_left, right_base, scratch);
    all_witnesses_rec(primes, left_base, lo, mid, out, scratch, nullptr);
    all_witnesses_rec(primes, right_base, mid, hi, out, scratch, nullptr);
  }
}

std::vector<BigUint> RsaAccumulator::all_witnesses(
    std::span<const BigUint> primes) const {
  return all_witnesses(primes, params_.generator);
}

std::vector<BigUint> RsaAccumulator::all_witnesses(
    std::span<const BigUint> primes, const BigUint& base) const {
  static metrics::Histogram& all_witnesses_ns =
      metrics::histogram("adscrypto.accumulator.all_witnesses_ns");
  const metrics::ScopedTimer timer(all_witnesses_ns);
  if (base.is_zero() || base >= params_.modulus)
    throw CryptoError("all_witnesses base out of range");
  std::vector<BigUint> out(primes.size());
  if (primes.empty()) return out;
  Montgomery::Scratch scratch;
  const Montgomery::Elem base_mont = mont_.to_mont(base, scratch);
  // The comb table is bound to g; only hand it down when the base really is
  // the generator (an arbitrary-base call must use the sliding window).
  const Montgomery::FixedBase* fixed =
      base == params_.generator ? fixed_g_.get() : nullptr;
  all_witnesses_rec(primes, base_mont, 0, primes.size(), out, scratch, fixed);
  return out;
}

bool RsaAccumulator::verify(const AccumulatorParams& params, const BigUint& ac,
                            const BigUint& element, const BigUint& witness) {
  const bigint::Montgomery mont(params.modulus);
  return verify(mont, ac, element, witness);
}

bool RsaAccumulator::verify(const bigint::Montgomery& mont, const BigUint& ac,
                            const BigUint& element, const BigUint& witness) {
  static metrics::Counter& verifies =
      metrics::counter("adscrypto.accumulator.verifies");
  verifies.add();
  if (witness.is_zero() || witness >= mont.modulus()) return false;
  if (element.is_zero()) return false;
  return mont.pow(witness, element) == ac;
}

RsaAccumulator::NonMembershipWitness RsaAccumulator::nonmember_witness(
    std::span<const BigUint> primes, const BigUint& x) const {
  if (x < BigUint(2)) throw CryptoError("nonmember_witness: bad element");
  const BigUint u = product_tree(primes);

  // Bézout: s·u + t·x = 1 requires gcd(u, x) = 1 — x prime and not in X.
  const auto e = BigUint::ext_gcd(u, x);
  if (!e.gcd.is_one())
    throw CryptoError("nonmember_witness: element is a member");

  // Normalize the u-coefficient into [1, x): a ≡ s (mod x).
  BigUint a = e.x % x;
  if (e.x_negative && !a.is_zero()) a = x - a;
  if (a.is_zero())
    throw CryptoError("nonmember_witness: degenerate coefficient");

  // a·u ≡ 1 (mod x) ⇒ b = (a·u − 1)/x is a non-negative integer and
  // Ac^a = g^(a·u) = g^(1 + b·x) = g · (g^b)^x.
  const auto qr = BigUint::divmod(a * u - BigUint(1), x);
  if (!qr.remainder.is_zero())
    throw CryptoError("nonmember_witness: internal Bezout inconsistency");
  return NonMembershipWitness{a, pow_g(qr.quotient)};
}

bool RsaAccumulator::verify_nonmember(const AccumulatorParams& params,
                                      const BigUint& ac, const BigUint& x,
                                      const NonMembershipWitness& witness) {
  if (witness.a.is_zero() || witness.a >= x) return false;
  if (witness.d.is_zero() || witness.d >= params.modulus) return false;
  const bigint::Montgomery mont(params.modulus);
  const BigUint lhs = mont.pow(ac, witness.a);
  const BigUint rhs = mont.mul(mont.pow(witness.d, x), params.generator);
  return lhs == rhs;
}

BigUint product_tree(std::span<const BigUint> values) {
  if (values.empty()) return BigUint(1);
  if (values.size() == 1) return values[0];

  // Bottom-up pairwise reduction: constant stack depth for any input size,
  // and each level is an independent batch of multiplications the pool can
  // split. An odd element rides along to the next level unchanged.
  ThreadPool& pool = ThreadPool::instance();
  std::vector<BigUint> level(values.begin(), values.end());
  std::vector<BigUint> next;
  while (level.size() > 1) {
    const std::size_t pairs = level.size() / 2;
    const bool odd = (level.size() & 1) != 0;
    next.resize(pairs + (odd ? 1 : 0));
    // Low levels have many cheap multiplications, high levels few huge
    // ones; scaling the grain with the pair count serves both.
    const std::size_t grain =
        std::max<std::size_t>(1, pairs / (2 * pool.thread_count()));
    pool.parallel_for(
        pairs,
        [&](std::size_t i) { next[i] = level[2 * i] * level[2 * i + 1]; },
        grain);
    if (odd) next[pairs] = std::move(level.back());
    level.swap(next);
  }
  return level[0];
}

}  // namespace slicer::adscrypto

#include "adscrypto/trapdoor.hpp"

#include "bigint/primes.hpp"
#include "common/errors.hpp"
#include "common/serial.hpp"

namespace slicer::adscrypto {

using bigint::BigUint;

Bytes TrapdoorPublicKey::serialize() const {
  Writer w;
  w.bytes(n.to_bytes_be());
  w.bytes(e.to_bytes_be());
  return std::move(w).take();
}

TrapdoorPublicKey TrapdoorPublicKey::deserialize(BytesView data) {
  Reader r(data);
  TrapdoorPublicKey out;
  out.n = BigUint::from_bytes_be(r.bytes());
  out.e = BigUint::from_bytes_be(r.bytes());
  r.expect_end();
  return out;
}

std::pair<TrapdoorPublicKey, TrapdoorSecretKey> TrapdoorPermutation::keygen(
    crypto::Drbg& rng, std::size_t modulus_bits) {
  if (modulus_bits < 32) throw CryptoError("trapdoor modulus too small");
  const BigUint e(65537);
  for (;;) {
    const std::size_t half = modulus_bits / 2;
    const BigUint p = bigint::generate_prime(rng, half);
    const BigUint q = bigint::generate_prime(rng, modulus_bits - half);
    if (p == q) continue;
    const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    if (!BigUint::gcd(e, phi).is_one()) continue;
    const BigUint n = p * q;
    const BigUint d = BigUint::mod_inverse(e, phi);
    return {TrapdoorPublicKey{n, e}, TrapdoorSecretKey{n, d}};
  }
}

TrapdoorPermutation::TrapdoorPermutation(TrapdoorPublicKey pk)
    : pk_(std::move(pk)),
      mont_(pk_.n),
      width_((pk_.n.bit_length() + 7) / 8) {
  if (pk_.e < BigUint(3)) throw CryptoError("trapdoor exponent too small");
}

BigUint TrapdoorPermutation::forward(const BigUint& x) const {
  return mont_.pow(x, pk_.e);
}

BigUint TrapdoorPermutation::inverse(const TrapdoorSecretKey& sk,
                                     const BigUint& y) const {
  if (sk.n != pk_.n) throw CryptoError("trapdoor key mismatch");
  return mont_.pow(y, sk.d);
}

BigUint TrapdoorPermutation::random_trapdoor(crypto::Drbg& rng) const {
  for (;;) {
    const BigUint t = bigint::random_below(rng, pk_.n);
    if (t >= BigUint(2)) return t;
  }
}

Bytes TrapdoorPermutation::encode(const BigUint& t) const {
  return t.to_bytes_be(width_);
}

BigUint TrapdoorPermutation::decode(BytesView data) const {
  if (data.size() != width_)
    throw DecodeError("trapdoor width mismatch");
  return BigUint::from_bytes_be(data);
}

}  // namespace slicer::adscrypto
